// Name-keyed construction of every scheduler in the library, so benches,
// examples and tests can sweep policies uniformly.

#ifndef WEBDB_EXP_SCHEDULER_FACTORY_H_
#define WEBDB_EXP_SCHEDULER_FACTORY_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/quts_scheduler.h"
#include "core/sharded_quts_scheduler.h"
#include "sched/admission.h"
#include "sched/cpu_set_scheduler.h"
#include "sched/scheduler.h"
#include "util/time.h"

namespace webdb {

enum class SchedulerKind {
  kFifo,        // single combined FIFO queue (Sec. 3.1)
  kUpdateHigh,  // UH: dual queue, updates preempt, VRD queries (Sec. 3.2)
  kQueryHigh,   // QH: dual queue, queries preempt, VRD queries (Sec. 3.2)
  kFifoUpdateHigh,  // FIFO-UH (Fig. 1)
  kFifoQueryHigh,   // FIFO-QH (Fig. 1)
  kQuts,        // QUTS (Sec. 4)
};

std::string ToString(SchedulerKind kind);

// Parses "fifo", "uh", "qh", "fifo-uh", "fifo-qh", "quts" (case-sensitive).
// Returns std::nullopt on unknown names; callers own the error message
// (ValidSchedulerNames below feeds a usage line).
std::optional<SchedulerKind> SchedulerKindFromName(const std::string& name);

// Every parseable name, in a stable order — for usage errors and sweeps.
std::vector<std::string> ValidSchedulerNames();

// Constructs a scheduler. `quts_options` only applies to kQuts.
std::unique_ptr<Scheduler> MakeScheduler(
    SchedulerKind kind,
    const QutsScheduler::Options& quts_options = QutsScheduler::Options());

// CPU/shard topology of a scheduler. The default (one CPU) reproduces the
// paper's single-CPU server exactly.
struct SchedulerTopology {
  int num_cpus = 1;
  // Symbol-space shards for sharded QUTS; 0 means one shard per CPU.
  int num_shards = 0;
  // Pull-based work stealing between shards (sharded QUTS only).
  bool enable_stealing = true;
};

// Admission-control policy, declaratively (mirrors SchedulerKind).
enum class AdmissionKind {
  kAdmitAll,         // the paper's implicit policy (no controller at all)
  kQueueCap,         // reject past a fixed queue depth
  kExpectedProfit,   // reject when residual expected profit is too small
  kDbf,              // demand-bound-function feasibility + load shedding
};

std::string ToString(AdmissionKind kind);

// Parses "admit-all", "queue-cap", "expected-profit", "dbf".
std::optional<AdmissionKind> AdmissionKindFromName(const std::string& name);
std::vector<std::string> ValidAdmissionNames();

// Declarative description of an admission controller. Knobs only apply to
// the kinds that read them.
struct AdmissionSpec {
  AdmissionKind kind = AdmissionKind::kAdmitAll;
  // kQueueCap: maximum queued queries.
  int64_t queue_cap = 256;
  // kExpectedProfit: assumed per-query CPU demand and worth floor.
  SimDuration typical_exec = Millis(7);
  double min_worth = 1.0;
  // kDbf: fraction of per-CPU wall-clock supply handed to queries.
  double supply_factor = 1.0;
  // kDbf: tenant tiers (demand weights). Default: one tier, weight 1.
  TenantSet tenants;
};

// Declarative description of a complete scheduler: policy kind + policy
// options + topology + admission. The one struct a bench or experiment
// needs to carry to describe "what schedules, on how many cores, and what
// gets in".
struct SchedulerSpec {
  SchedulerKind kind = SchedulerKind::kQuts;
  // Applies to kQuts (single-CPU and sharded alike).
  QutsScheduler::Options quts;
  SchedulerTopology topology;
  AdmissionSpec admission;
};

// Constructs the admission controller an AdmissionSpec describes, sized for
// `num_cpus` demand lanes. Returns nullptr for kAdmitAll — the server's
// null-controller fast path is the genuine admit-all policy.
std::unique_ptr<AdmissionController> MakeAdmission(const AdmissionSpec& spec,
                                                   int num_cpus);

// Constructs the scheduler a spec describes, ready for WebDatabaseServer:
// num_cpus == 1 yields the legacy policy behind an owning SingleCpuAdapter
// (bit-identical to the pre-CPU-set stack); num_cpus > 1 requires kQuts and
// yields a ShardedQutsScheduler on the spec's topology.
std::unique_ptr<CpuSetScheduler> MakeScheduler(const SchedulerSpec& spec);

// The four policies compared throughout Section 5.1.
std::vector<SchedulerKind> PaperSchedulers();

}  // namespace webdb

#endif  // WEBDB_EXP_SCHEDULER_FACTORY_H_
