// Name-keyed construction of every scheduler in the library, so benches,
// examples and tests can sweep policies uniformly.

#ifndef WEBDB_EXP_SCHEDULER_FACTORY_H_
#define WEBDB_EXP_SCHEDULER_FACTORY_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/quts_scheduler.h"
#include "core/sharded_quts_scheduler.h"
#include "sched/cpu_set_scheduler.h"
#include "sched/scheduler.h"

namespace webdb {

enum class SchedulerKind {
  kFifo,        // single combined FIFO queue (Sec. 3.1)
  kUpdateHigh,  // UH: dual queue, updates preempt, VRD queries (Sec. 3.2)
  kQueryHigh,   // QH: dual queue, queries preempt, VRD queries (Sec. 3.2)
  kFifoUpdateHigh,  // FIFO-UH (Fig. 1)
  kFifoQueryHigh,   // FIFO-QH (Fig. 1)
  kQuts,        // QUTS (Sec. 4)
};

std::string ToString(SchedulerKind kind);

// Parses "fifo", "uh", "qh", "fifo-uh", "fifo-qh", "quts" (case-sensitive).
// Returns std::nullopt on unknown names; callers own the error message
// (ValidSchedulerNames below feeds a usage line).
std::optional<SchedulerKind> SchedulerKindFromName(const std::string& name);

// Every parseable name, in a stable order — for usage errors and sweeps.
std::vector<std::string> ValidSchedulerNames();

// Constructs a scheduler. `quts_options` only applies to kQuts.
std::unique_ptr<Scheduler> MakeScheduler(
    SchedulerKind kind,
    const QutsScheduler::Options& quts_options = QutsScheduler::Options());

// CPU/shard topology of a scheduler. The default (one CPU) reproduces the
// paper's single-CPU server exactly.
struct SchedulerTopology {
  int num_cpus = 1;
  // Symbol-space shards for sharded QUTS; 0 means one shard per CPU.
  int num_shards = 0;
  // Pull-based work stealing between shards (sharded QUTS only).
  bool enable_stealing = true;
};

// Declarative description of a complete scheduler: policy kind + policy
// options + topology. The one struct a bench or experiment needs to carry
// to describe "what schedules and on how many cores".
struct SchedulerSpec {
  SchedulerKind kind = SchedulerKind::kQuts;
  // Applies to kQuts (single-CPU and sharded alike).
  QutsScheduler::Options quts;
  SchedulerTopology topology;
};

// Constructs the scheduler a spec describes, ready for WebDatabaseServer:
// num_cpus == 1 yields the legacy policy behind an owning SingleCpuAdapter
// (bit-identical to the pre-CPU-set stack); num_cpus > 1 requires kQuts and
// yields a ShardedQutsScheduler on the spec's topology.
std::unique_ptr<CpuSetScheduler> MakeScheduler(const SchedulerSpec& spec);

// The four policies compared throughout Section 5.1.
std::vector<SchedulerKind> PaperSchedulers();

}  // namespace webdb

#endif  // WEBDB_EXP_SCHEDULER_FACTORY_H_
