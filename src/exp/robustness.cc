#include "exp/robustness.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <utility>

#include "exp/experiment.h"
#include "exp/scheduler_factory.h"
#include "qc/qc_generator.h"

namespace webdb {

namespace {

// Each knob value regenerates the trace and replays the Figure 6
// comparison. Both levels fan out through the same SweepRunner: first one
// trace-generation task per knob, then one experiment per (knob, scheduler)
// pair — 4x as many runs as knobs, all independent.
std::vector<RobustnessRow> SweepKnob(
    const std::vector<double>& knobs,
    const std::function<Trace(double)>& make_trace, uint64_t qc_seed,
    const SweepConfig& sweep) {
  const SweepRunner runner(sweep);
  const std::vector<Trace> traces =
      runner.Map(knobs.size(), [&](size_t i) { return make_trace(knobs[i]); });

  const std::vector<SchedulerKind> kinds = PaperSchedulers();
  std::vector<SweepRunner::Point> points;
  for (const Trace& trace : traces) {
    for (SchedulerKind kind : kinds) {
      SweepRunner::Point point;
      point.trace = &trace;
      point.spec.kind = kind;
      point.options.server.dispatch_overhead = Micros(20);
      point.options.qc_seed = qc_seed;
      point.options.qc = BalancedProfile(QcShape::kStep);
      points.push_back(point);
    }
  }
  const std::vector<ExperimentResult> results = runner.RunPoints(points);

  std::vector<RobustnessRow> rows;
  for (size_t k = 0; k < knobs.size(); ++k) {
    RobustnessRow row;
    row.knob = knobs[k];
    for (size_t s = 0; s < kinds.size(); ++s) {
      const double total = results[k * kinds.size() + s].total_pct;
      switch (kinds[s]) {
        case SchedulerKind::kFifo:
          row.fifo = total;
          break;
        case SchedulerKind::kUpdateHigh:
          row.uh = total;
          break;
        case SchedulerKind::kQueryHigh:
          row.qh = total;
          break;
        default:
          row.quts = total;
          break;
      }
    }
    rows.push_back(row);
  }
  return rows;
}

}  // namespace

double RobustnessRow::QutsVsBestFixed() const {
  return quts - std::max(uh, qh);
}

std::vector<RobustnessRow> RunCorrelationRobustness(
    StockTraceConfig base, const std::vector<double>& correlations,
    uint64_t qc_seed, const SweepConfig& sweep) {
  return SweepKnob(
      correlations,
      [&base](double correlation) {
        StockTraceConfig config = base;
        config.popularity_correlation = correlation;
        return GenerateStockTrace(config);
      },
      qc_seed, sweep);
}

std::vector<RobustnessRow> RunSpikeRobustness(
    StockTraceConfig base, const std::vector<double>& gains, uint64_t qc_seed,
    const SweepConfig& sweep) {
  return SweepKnob(
      gains,
      [&base](double gain) {
        StockTraceConfig config = base;
        config.query_spike_gain = std::max(1.0, gain);
        return GenerateStockTrace(config);
      },
      qc_seed, sweep);
}

}  // namespace webdb
