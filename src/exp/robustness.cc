#include "exp/robustness.h"

#include <algorithm>
#include <memory>

#include "exp/experiment.h"
#include "exp/scheduler_factory.h"
#include "qc/qc_generator.h"

namespace webdb {

namespace {

RobustnessRow CompareSchedulers(const Trace& trace, double knob,
                                uint64_t qc_seed) {
  RobustnessRow row;
  row.knob = knob;
  for (SchedulerKind kind : PaperSchedulers()) {
    std::unique_ptr<Scheduler> scheduler = MakeScheduler(kind);
    ExperimentOptions options;
    options.server.dispatch_overhead = Micros(20);
    options.qc_seed = qc_seed;
    options.qc = BalancedProfile(QcShape::kStep);
    const double total =
        RunExperiment(trace, scheduler.get(), options).total_pct;
    switch (kind) {
      case SchedulerKind::kFifo:
        row.fifo = total;
        break;
      case SchedulerKind::kUpdateHigh:
        row.uh = total;
        break;
      case SchedulerKind::kQueryHigh:
        row.qh = total;
        break;
      default:
        row.quts = total;
        break;
    }
  }
  return row;
}

}  // namespace

double RobustnessRow::QutsVsBestFixed() const {
  return quts - std::max(uh, qh);
}

std::vector<RobustnessRow> RunCorrelationRobustness(
    StockTraceConfig base, const std::vector<double>& correlations,
    uint64_t qc_seed) {
  std::vector<RobustnessRow> rows;
  for (double correlation : correlations) {
    StockTraceConfig config = base;
    config.popularity_correlation = correlation;
    const Trace trace = GenerateStockTrace(config);
    rows.push_back(CompareSchedulers(trace, correlation, qc_seed));
  }
  return rows;
}

std::vector<RobustnessRow> RunSpikeRobustness(
    StockTraceConfig base, const std::vector<double>& gains,
    uint64_t qc_seed) {
  std::vector<RobustnessRow> rows;
  for (double gain : gains) {
    StockTraceConfig config = base;
    config.query_spike_gain = std::max(1.0, gain);
    const Trace trace = GenerateStockTrace(config);
    rows.push_back(CompareSchedulers(trace, gain, qc_seed));
  }
  return rows;
}

}  // namespace webdb
