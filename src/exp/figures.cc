#include "exp/figures.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/rho.h"
#include "sched/admission.h"

#include "util/logging.h"
#include "util/stats.h"

namespace webdb {

namespace {

// Default server configuration for QC experiments (paper setup). The small
// dispatch overhead is what makes sub-millisecond atom times pay a real
// switching price (Figure 10b).
ServerConfig QcServerConfig() {
  ServerConfig config;
  config.dispatch_overhead = Micros(20);
  return config;
}

// A RunExperiment point drawing contracts from `profile` — the common shape
// of most figure sweeps.
SweepRunner::Point ProfilePoint(const Trace& trace, SchedulerKind kind,
                                const QcProfile& profile, uint64_t qc_seed,
                                const QutsScheduler::Options& quts_options =
                                    QutsScheduler::Options()) {
  SweepRunner::Point point;
  point.trace = &trace;
  point.spec.kind = kind;
  point.spec.quts = quts_options;
  point.options.server = QcServerConfig();
  point.options.qc_seed = qc_seed;
  point.options.qc = profile;
  return point;
}

// A point running QUTS under the Section 5.2 alternating-preference
// schedule. `schedule` is shared read-only across the sweep and must
// outlive it.
SweepRunner::Point SchedulePoint(const Trace& trace,
                                 const TimeVaryingQcGenerator& schedule,
                                 SchedulerKind kind, uint64_t qc_seed,
                                 const QutsScheduler::Options& quts_options =
                                     QutsScheduler::Options()) {
  SweepRunner::Point point;
  point.trace = &trace;
  point.spec.kind = kind;
  point.spec.quts = quts_options;
  point.options.server = QcServerConfig();
  point.options.qc_seed = qc_seed;
  point.options.qc = QcSchedule{&schedule};
  return point;
}

TimeVaryingQcGenerator Section52Schedule(const Trace& trace) {
  return TimeVaryingQcGenerator::AlternatingPreference(trace.EndTime() + 1, 4,
                                                       5.0, QcShape::kStep);
}

std::vector<double> Smooth(const std::vector<double>& v, size_t w) {
  TimeSeries series(1);
  for (size_t i = 0; i < v.size(); ++i) {
    series.Add(static_cast<int64_t>(i), v[i]);
  }
  return series.SmoothedSums(w);
}

std::vector<double> Sum(const std::vector<double>& a,
                        const std::vector<double>& b) {
  std::vector<double> out(std::max(a.size(), b.size()), 0.0);
  for (size_t i = 0; i < a.size(); ++i) out[i] += a[i];
  for (size_t i = 0; i < b.size(); ++i) out[i] += b[i];
  return out;
}

}  // namespace

std::vector<double> Table4QodShares() {
  std::vector<double> shares;
  for (int i = 1; i <= 9; ++i) shares.push_back(static_cast<double>(i) / 10.0);
  return shares;
}

std::vector<double> OmegaSensitivityGrid() {
  return {0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 50.0, 100.0};
}

std::vector<double> TauSensitivityGrid() {
  return {1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0};
}

std::vector<double> AlphaSensitivityGrid() {
  return {0.05, 0.1, 0.2, 0.5, 0.8, 1.0};
}

std::vector<double> RhoValidationGrid() {
  return {0.2, 0.4, 0.5, 0.6, 0.7, 0.85, 1.0};
}

std::vector<double> CorrelationRobustnessGrid() { return {0.0, 0.1, 0.5, 1.0}; }

std::vector<double> SpikeRobustnessGrid() { return {1.0, 3.0, 4.5, 6.0}; }

std::vector<TradeoffRow> RunFigure1(const Trace& trace,
                                    const SweepConfig& sweep) {
  const std::vector<SchedulerKind> kinds = {SchedulerKind::kFifo,
                                            SchedulerKind::kFifoUpdateHigh,
                                            SchedulerKind::kFifoQueryHigh};
  std::vector<SweepRunner::Point> points;
  for (SchedulerKind kind : kinds) {
    SweepRunner::Point point;
    point.trace = &trace;
    point.spec.kind = kind;
    point.options.qc = ZeroContracts{};
    // The naive Figure 1 policies predate QCs: no lifetime drops, #uu
    // staleness, every query runs to completion.
    point.options.server.lifetime_factor = 0.0;
    point.options.server.queue_sample_period = Seconds(1);
    points.push_back(point);
  }
  const std::vector<ExperimentResult> results =
      SweepRunner(sweep).RunPoints(points);
  std::vector<TradeoffRow> rows;
  for (size_t i = 0; i < results.size(); ++i) {
    TradeoffRow row;
    row.policy = ToString(kinds[i]);
    row.avg_response_ms = results[i].avg_response_ms;
    row.avg_staleness_uu = results[i].avg_staleness;
    row.peak_queued_queries = results[i].peak_queued_queries;
    row.peak_queued_updates = results[i].peak_queued_updates;
    rows.push_back(row);
  }
  return rows;
}

std::vector<ProfitBarRow> RunFigure6(const Trace& trace, QcShape shape,
                                     uint64_t qc_seed,
                                     const SweepConfig& sweep) {
  const std::vector<SchedulerKind> kinds = PaperSchedulers();
  std::vector<SweepRunner::Point> points;
  for (SchedulerKind kind : kinds) {
    points.push_back(
        ProfilePoint(trace, kind, BalancedProfile(shape), qc_seed));
  }
  const std::vector<ExperimentResult> results =
      SweepRunner(sweep).RunPoints(points);
  std::vector<ProfitBarRow> rows;
  for (size_t i = 0; i < results.size(); ++i) {
    rows.push_back(ProfitBarRow{ToString(kinds[i]), results[i].qos_pct,
                                results[i].qod_pct});
  }
  return rows;
}

std::vector<SweepPoint> RunQcSweep(const Trace& trace, SchedulerKind kind,
                                   uint64_t qc_seed,
                                   const SweepConfig& sweep) {
  const std::vector<double> shares = Table4QodShares();
  std::vector<SweepRunner::Point> points;
  for (double qod_share : shares) {
    points.push_back(ProfilePoint(
        trace, kind, Table4Profile(qod_share, QcShape::kStep), qc_seed));
  }
  const std::vector<ExperimentResult> results =
      SweepRunner(sweep).RunPoints(points);
  std::vector<SweepPoint> out;
  for (size_t i = 0; i < results.size(); ++i) {
    out.push_back(SweepPoint{shares[i], results[i].qos_pct,
                             results[i].qod_pct, results[i].total_pct,
                             results[i].qos_max_pct});
  }
  return out;
}

ImprovementSummary SummarizeImprovement(const std::vector<SweepPoint>& uh,
                                        const std::vector<SweepPoint>& qh,
                                        const std::vector<SweepPoint>& quts) {
  WEBDB_CHECK(uh.size() == quts.size() && qh.size() == quts.size());
  ImprovementSummary summary;
  summary.min_vs_best = 1e9;
  for (size_t i = 0; i < quts.size(); ++i) {
    const double vs_uh =
        uh[i].total_pct <= 0 ? 0.0
                             : (quts[i].total_pct - uh[i].total_pct) /
                                   uh[i].total_pct;
    const double vs_qh =
        qh[i].total_pct <= 0 ? 0.0
                             : (quts[i].total_pct - qh[i].total_pct) /
                                   qh[i].total_pct;
    summary.max_vs_uh = std::max(summary.max_vs_uh, vs_uh);
    summary.max_vs_qh = std::max(summary.max_vs_qh, vs_qh);
    const double best = std::max(uh[i].total_pct, qh[i].total_pct);
    summary.min_vs_best =
        std::min(summary.min_vs_best, quts[i].total_pct - best);
  }
  return summary;
}

AdaptabilityResult RunFigure9(const Trace& trace, int intervals, double ratio,
                              QcShape shape, uint64_t qc_seed) {
  const SimDuration duration = trace.EndTime() + 1;
  const TimeVaryingQcGenerator schedule =
      TimeVaryingQcGenerator::AlternatingPreference(duration, intervals,
                                                    ratio, shape);
  std::unique_ptr<Scheduler> scheduler = MakeScheduler(SchedulerKind::kQuts);
  ExperimentOptions options;
  options.server = QcServerConfig();
  options.qc_seed = qc_seed;
  options.qc = QcSchedule{&schedule};
  AdaptabilityResult out;
  out.raw = RunExperiment(trace, scheduler.get(), options);

  // Late commits can extend the gained series past the max series; pad all
  // four to a common length so the plots line up second by second.
  const size_t len = std::max(
      {out.raw.qos_gained_per_s.size(), out.raw.qod_gained_per_s.size(),
       out.raw.qos_max_per_s.size(), out.raw.qod_max_per_s.size()});
  for (auto* series : {&out.raw.qos_gained_per_s, &out.raw.qod_gained_per_s,
                       &out.raw.qos_max_per_s, &out.raw.qod_max_per_s}) {
    series->resize(len, 0.0);
  }

  constexpr size_t kWindow = 5;  // the paper's 5-second moving window
  out.qos_gained = Smooth(out.raw.qos_gained_per_s, kWindow);
  out.qod_gained = Smooth(out.raw.qod_gained_per_s, kWindow);
  out.qos_max = Smooth(out.raw.qos_max_per_s, kWindow);
  out.qod_max = Smooth(out.raw.qod_max_per_s, kWindow);
  out.total_gained = Sum(out.qos_gained, out.qod_gained);
  out.total_max = Sum(out.qos_max, out.qod_max);
  out.rho = out.raw.rho_series;
  return out;
}

std::vector<std::pair<double, double>> RunOmegaSensitivity(
    const Trace& trace, const std::vector<double>& omegas_s, uint64_t qc_seed,
    const SweepConfig& sweep) {
  const TimeVaryingQcGenerator schedule = Section52Schedule(trace);
  std::vector<SweepRunner::Point> points;
  for (double omega_s : omegas_s) {
    QutsScheduler::Options quts_options;
    quts_options.adaptation_period = SecondsF(omega_s);
    points.push_back(SchedulePoint(trace, schedule, SchedulerKind::kQuts,
                                   qc_seed, quts_options));
  }
  const std::vector<ExperimentResult> results =
      SweepRunner(sweep).RunPoints(points);
  std::vector<std::pair<double, double>> out;
  for (size_t i = 0; i < results.size(); ++i) {
    out.emplace_back(omegas_s[i], results[i].total_pct);
  }
  return out;
}

std::vector<std::pair<double, double>> RunTauSensitivity(
    const Trace& trace, const std::vector<double>& taus_ms, uint64_t qc_seed,
    const SweepConfig& sweep) {
  const TimeVaryingQcGenerator schedule = Section52Schedule(trace);
  std::vector<SweepRunner::Point> points;
  for (double tau_ms : taus_ms) {
    QutsScheduler::Options quts_options;
    quts_options.atom_time = static_cast<SimDuration>(tau_ms * 1000.0);
    points.push_back(SchedulePoint(trace, schedule, SchedulerKind::kQuts,
                                   qc_seed, quts_options));
  }
  const std::vector<ExperimentResult> results =
      SweepRunner(sweep).RunPoints(points);
  std::vector<std::pair<double, double>> out;
  for (size_t i = 0; i < results.size(); ++i) {
    out.emplace_back(taus_ms[i], results[i].total_pct);
  }
  return out;
}

std::vector<AblationRow> RunCombinationAblation(const Trace& trace,
                                                uint64_t qc_seed,
                                                const SweepConfig& sweep) {
  std::vector<SweepRunner::Point> points;
  std::vector<std::string> names;
  for (SchedulerKind kind : {SchedulerKind::kQuts, SchedulerKind::kQueryHigh}) {
    for (QcCombination combination :
         {QcCombination::kQosIndependent, QcCombination::kQosDependent}) {
      QcProfile profile = BalancedProfile(QcShape::kStep);
      profile.combination = combination;
      points.push_back(ProfilePoint(trace, kind, profile, qc_seed));
      names.push_back(ToString(kind) + "/" + ToString(combination));
    }
  }
  const std::vector<ExperimentResult> results =
      SweepRunner(sweep).RunPoints(points);
  std::vector<AblationRow> rows;
  for (size_t i = 0; i < results.size(); ++i) {
    rows.push_back(AblationRow{names[i], results[i].qos_pct,
                               results[i].qod_pct, results[i].total_pct});
  }
  return rows;
}

std::vector<AblationRow> RunQueryPolicyAblation(const Trace& trace,
                                                uint64_t qc_seed,
                                                const SweepConfig& sweep) {
  std::vector<SweepRunner::Point> points;
  std::vector<std::string> names;
  for (QueryPolicy policy :
       {QueryPolicy::kVrd, QueryPolicy::kFifo, QueryPolicy::kEdf,
        QueryPolicy::kProfitDensity}) {
    QutsScheduler::Options quts_options;
    quts_options.query_policy = policy;
    points.push_back(ProfilePoint(trace, SchedulerKind::kQuts,
                                  BalancedProfile(QcShape::kStep), qc_seed,
                                  quts_options));
    names.push_back("quts/" + ToString(policy));
  }
  const std::vector<ExperimentResult> results =
      SweepRunner(sweep).RunPoints(points);
  std::vector<AblationRow> rows;
  for (size_t i = 0; i < results.size(); ++i) {
    rows.push_back(AblationRow{names[i], results[i].qos_pct,
                               results[i].qod_pct, results[i].total_pct});
  }
  return rows;
}

std::vector<AblationRow> RunStalenessAblation(const Trace& trace,
                                              uint64_t qc_seed,
                                              const SweepConfig& sweep) {
  struct Variant {
    StalenessMetric metric;
    StalenessCombiner combiner;
    double uu_max;  // cutoff in the metric's unit
  };
  // uu-raw counts superseded arrivals too (cutoff 3: up to two missed
  // changes tolerated); td cutoff 500 ms: an item is "too stale" when its
  // oldest unapplied update has waited longer than half a second.
  const std::vector<Variant> variants = {
      {StalenessMetric::kUnappliedUpdates, StalenessCombiner::kMax, 1.0},
      {StalenessMetric::kUnappliedUpdates, StalenessCombiner::kSum, 1.0},
      {StalenessMetric::kUnappliedArrivals, StalenessCombiner::kMax, 3.0},
      {StalenessMetric::kTimeDifferential, StalenessCombiner::kMax, 500.0},
  };
  std::vector<SweepRunner::Point> points;
  std::vector<std::string> names;
  for (const Variant& variant : variants) {
    SweepRunner::Point point;
    point.trace = &trace;
    point.spec.kind = SchedulerKind::kQuts;
    point.options.server = QcServerConfig();
    point.options.server.staleness_metric = variant.metric;
    point.options.server.staleness_combiner = variant.combiner;
    point.options.qc_seed = qc_seed;
    QcProfile profile = BalancedProfile(QcShape::kStep);
    profile.uu_max = variant.uu_max;
    point.options.qc = profile;
    points.push_back(point);
    names.push_back(ToString(variant.metric) + "/" +
                    ToString(variant.combiner));
  }
  const std::vector<ExperimentResult> results =
      SweepRunner(sweep).RunPoints(points);
  std::vector<AblationRow> rows;
  for (size_t i = 0; i < results.size(); ++i) {
    rows.push_back(AblationRow{names[i], results[i].qos_pct,
                               results[i].qod_pct, results[i].total_pct});
  }
  return rows;
}

std::vector<std::pair<double, double>> RunAlphaSensitivity(
    const Trace& trace, const std::vector<double>& alphas, uint64_t qc_seed,
    const SweepConfig& sweep) {
  const TimeVaryingQcGenerator schedule = Section52Schedule(trace);
  std::vector<SweepRunner::Point> points;
  for (double alpha : alphas) {
    QutsScheduler::Options quts_options;
    quts_options.alpha = alpha;
    points.push_back(SchedulePoint(trace, schedule, SchedulerKind::kQuts,
                                   qc_seed, quts_options));
  }
  const std::vector<ExperimentResult> results =
      SweepRunner(sweep).RunPoints(points);
  std::vector<std::pair<double, double>> out;
  for (size_t i = 0; i < results.size(); ++i) {
    out.emplace_back(alphas[i], results[i].total_pct);
  }
  return out;
}

std::vector<AblationRow> RunSlicingAblation(const Trace& trace,
                                            uint64_t qc_seed,
                                            const SweepConfig& sweep) {
  std::vector<SweepRunner::Point> points;
  std::vector<std::string> names;
  for (QutsSlicing slicing :
       {QutsSlicing::kRandom, QutsSlicing::kDeterministic}) {
    QutsScheduler::Options quts_options;
    quts_options.slicing = slicing;
    // The QoD-heavy Table 4 point keeps rho well below 1, so the slicing
    // scheme actually matters.
    points.push_back(ProfilePoint(trace, SchedulerKind::kQuts,
                                  Table4Profile(0.8), qc_seed, quts_options));
    names.push_back(slicing == QutsSlicing::kRandom ? "quts/random"
                                                    : "quts/deterministic");
  }
  const std::vector<ExperimentResult> results =
      SweepRunner(sweep).RunPoints(points);
  std::vector<AblationRow> rows;
  for (size_t i = 0; i < results.size(); ++i) {
    rows.push_back(AblationRow{names[i], results[i].qos_pct,
                               results[i].qod_pct, results[i].total_pct});
  }
  return rows;
}

std::vector<AblationRow> RunAdmissionAblation(const Trace& trace,
                                              uint64_t qc_seed,
                                              const SweepConfig& sweep) {
  struct Variant {
    std::string name;
    std::unique_ptr<AdmissionController> controller;  // null = admit all
  };
  // Controllers are stateful (rejection counters), so each one belongs to
  // exactly one point; the vector outlives the sweep.
  std::vector<Variant> variants;
  variants.push_back(Variant{"admit-all", nullptr});
  variants.push_back(Variant{"queue-cap(64)",
                             std::make_unique<QueueCapAdmission>(64)});
  variants.push_back(
      Variant{"expected-profit",
              std::make_unique<ExpectedProfitAdmission>(Millis(7), 1.0)});
  std::vector<SweepRunner::Point> points;
  for (Variant& variant : variants) {
    SweepRunner::Point point;
    point.trace = &trace;
    point.spec.kind = SchedulerKind::kQuts;
    point.options.server = QcServerConfig();
    point.options.server.admission = variant.controller.get();
    point.options.qc_seed = qc_seed;
    point.options.qc = BalancedProfile(QcShape::kStep);
    points.push_back(point);
  }
  const std::vector<ExperimentResult> results =
      SweepRunner(sweep).RunPoints(points);
  std::vector<AblationRow> rows;
  for (size_t i = 0; i < results.size(); ++i) {
    rows.push_back(AblationRow{variants[i].name, results[i].qos_pct,
                               results[i].qod_pct, results[i].total_pct});
  }
  return rows;
}

std::vector<AblationRow> RunUpdatePolicyAblation(const Trace& trace,
                                                 uint64_t qc_seed,
                                                 const SweepConfig& sweep) {
  // Demand weights: how often each item is queried in this trace. Shared
  // read-only by the runs that use them.
  std::vector<double> weights(static_cast<size_t>(trace.num_items), 0.0);
  for (const QueryRecord& q : trace.queries) {
    for (ItemId item : q.items) weights[static_cast<size_t>(item)] += 1.0;
  }
  std::vector<SweepRunner::Point> points;
  std::vector<std::string> names;
  for (UpdatePolicy policy :
       {UpdatePolicy::kFifo, UpdatePolicy::kDemandWeighted}) {
    QutsScheduler::Options quts_options;
    quts_options.update_policy = policy;
    if (policy == UpdatePolicy::kDemandWeighted) {
      quts_options.item_weights = &weights;
    }
    points.push_back(ProfilePoint(trace, SchedulerKind::kQuts,
                                  Table4Profile(0.8), qc_seed, quts_options));
    names.push_back("quts/" + ToString(policy));
  }
  const std::vector<ExperimentResult> results =
      SweepRunner(sweep).RunPoints(points);
  std::vector<AblationRow> rows;
  for (size_t i = 0; i < results.size(); ++i) {
    rows.push_back(AblationRow{names[i], results[i].qos_pct,
                               results[i].qod_pct, results[i].total_pct});
  }
  return rows;
}

std::vector<AblationRow> RunAdaptabilityComparison(const Trace& trace,
                                                   uint64_t qc_seed,
                                                   const SweepConfig& sweep) {
  const TimeVaryingQcGenerator schedule = Section52Schedule(trace);
  const std::vector<SchedulerKind> kinds = PaperSchedulers();
  std::vector<SweepRunner::Point> points;
  for (SchedulerKind kind : kinds) {
    points.push_back(SchedulePoint(trace, schedule, kind, qc_seed));
  }
  const std::vector<ExperimentResult> results =
      SweepRunner(sweep).RunPoints(points);
  std::vector<AblationRow> rows;
  for (size_t i = 0; i < results.size(); ++i) {
    rows.push_back(AblationRow{ToString(kinds[i]), results[i].qos_pct,
                               results[i].qod_pct, results[i].total_pct});
  }
  return rows;
}

std::vector<RhoModelPoint> RunRhoModelValidation(
    const Trace& trace, const std::vector<double>& rhos,
    const QcProfile& profile, uint64_t qc_seed, const SweepConfig& sweep) {
  const double qos_share = profile.ExpectedQosSharePct();
  std::vector<SweepRunner::Point> points;
  for (double rho : rhos) {
    QutsScheduler::Options quts_options;
    quts_options.freeze_rho = true;
    quts_options.initial_rho = rho;
    points.push_back(ProfilePoint(trace, SchedulerKind::kQuts, profile,
                                  qc_seed, quts_options));
  }
  const std::vector<ExperimentResult> results =
      SweepRunner(sweep).RunPoints(points);
  std::vector<RhoModelPoint> out;
  for (size_t i = 0; i < results.size(); ++i) {
    RhoModelPoint point;
    point.rho = rhos[i];
    point.measured_total_pct = results[i].total_pct;
    point.modeled_total_pct =
        ModeledTotalProfit(qos_share, 1.0 - qos_share, rhos[i]);
    out.push_back(point);
  }
  return out;
}

std::vector<AblationRow> RunConcurrencyAblation(const Trace& trace,
                                                uint64_t qc_seed,
                                                const SweepConfig& sweep) {
  std::vector<SweepRunner::Point> points;
  std::vector<std::string> names;
  for (bool enable : {true, false}) {
    SweepRunner::Point point;
    point.trace = &trace;
    point.spec.kind = SchedulerKind::kQuts;
    point.options.server = QcServerConfig();
    point.options.server.enable_2plhp = enable;
    point.options.qc_seed = qc_seed;
    point.options.qc = BalancedProfile(QcShape::kStep);
    points.push_back(point);
    names.push_back(enable ? "2pl-hp" : "no-cc");
  }
  const std::vector<ExperimentResult> results =
      SweepRunner(sweep).RunPoints(points);
  std::vector<AblationRow> rows;
  for (size_t i = 0; i < results.size(); ++i) {
    rows.push_back(AblationRow{names[i], results[i].qos_pct,
                               results[i].qod_pct, results[i].total_pct});
  }
  return rows;
}

}  // namespace webdb
