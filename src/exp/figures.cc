#include "exp/figures.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/rho.h"
#include "sched/admission.h"

#include "util/logging.h"
#include "util/stats.h"

namespace webdb {

namespace {

// Default server configuration for QC experiments (paper setup). The small
// dispatch overhead is what makes sub-millisecond atom times pay a real
// switching price (Figure 10b).
ServerConfig QcServerConfig() {
  ServerConfig config;
  config.dispatch_overhead = Micros(20);
  return config;
}

ExperimentResult RunWithProfile(const Trace& trace, SchedulerKind kind,
                                const QcProfile& profile, uint64_t qc_seed,
                                QutsScheduler::Options quts_options =
                                    QutsScheduler::Options()) {
  std::unique_ptr<Scheduler> scheduler = MakeScheduler(kind, quts_options);
  ExperimentOptions options;
  options.server = QcServerConfig();
  options.qc_seed = qc_seed;
  options.qc = profile;
  return RunExperiment(trace, scheduler.get(), options);
}

std::vector<double> Smooth(const std::vector<double>& v, size_t w) {
  TimeSeries series(1);
  for (size_t i = 0; i < v.size(); ++i) {
    series.Add(static_cast<int64_t>(i), v[i]);
  }
  return series.SmoothedSums(w);
}

std::vector<double> Sum(const std::vector<double>& a,
                        const std::vector<double>& b) {
  std::vector<double> out(std::max(a.size(), b.size()), 0.0);
  for (size_t i = 0; i < a.size(); ++i) out[i] += a[i];
  for (size_t i = 0; i < b.size(); ++i) out[i] += b[i];
  return out;
}

}  // namespace

std::vector<TradeoffRow> RunFigure1(const Trace& trace) {
  std::vector<TradeoffRow> rows;
  for (SchedulerKind kind :
       {SchedulerKind::kFifo, SchedulerKind::kFifoUpdateHigh,
        SchedulerKind::kFifoQueryHigh}) {
    std::unique_ptr<Scheduler> scheduler = MakeScheduler(kind);
    ExperimentOptions options;
    options.qc = ZeroContracts{};
    // The naive Figure 1 policies predate QCs: no lifetime drops, #uu
    // staleness, every query runs to completion.
    options.server.lifetime_factor = 0.0;
    options.server.queue_sample_period = Seconds(1);
    const ExperimentResult result =
        RunExperiment(trace, scheduler.get(), options);
    TradeoffRow row;
    row.policy = ToString(kind);
    row.avg_response_ms = result.avg_response_ms;
    row.avg_staleness_uu = result.avg_staleness;
    row.peak_queued_queries = result.peak_queued_queries;
    row.peak_queued_updates = result.peak_queued_updates;
    rows.push_back(row);
  }
  return rows;
}

std::vector<ProfitBarRow> RunFigure6(const Trace& trace, QcShape shape,
                                     uint64_t qc_seed) {
  std::vector<ProfitBarRow> rows;
  for (SchedulerKind kind : PaperSchedulers()) {
    const ExperimentResult result =
        RunWithProfile(trace, kind, BalancedProfile(shape), qc_seed);
    rows.push_back(
        ProfitBarRow{ToString(kind), result.qos_pct, result.qod_pct});
  }
  return rows;
}

std::vector<SweepPoint> RunQcSweep(const Trace& trace, SchedulerKind kind,
                                   uint64_t qc_seed) {
  std::vector<SweepPoint> points;
  for (int i = 1; i <= 9; ++i) {
    const double qod_share = static_cast<double>(i) / 10.0;
    const ExperimentResult result = RunWithProfile(
        trace, kind, Table4Profile(qod_share, QcShape::kStep), qc_seed);
    points.push_back(SweepPoint{qod_share, result.qos_pct, result.qod_pct,
                                result.total_pct, result.qos_max_pct});
  }
  return points;
}

ImprovementSummary SummarizeImprovement(const std::vector<SweepPoint>& uh,
                                        const std::vector<SweepPoint>& qh,
                                        const std::vector<SweepPoint>& quts) {
  WEBDB_CHECK(uh.size() == quts.size() && qh.size() == quts.size());
  ImprovementSummary summary;
  summary.min_vs_best = 1e9;
  for (size_t i = 0; i < quts.size(); ++i) {
    const double vs_uh =
        uh[i].total_pct <= 0 ? 0.0
                             : (quts[i].total_pct - uh[i].total_pct) /
                                   uh[i].total_pct;
    const double vs_qh =
        qh[i].total_pct <= 0 ? 0.0
                             : (quts[i].total_pct - qh[i].total_pct) /
                                   qh[i].total_pct;
    summary.max_vs_uh = std::max(summary.max_vs_uh, vs_uh);
    summary.max_vs_qh = std::max(summary.max_vs_qh, vs_qh);
    const double best = std::max(uh[i].total_pct, qh[i].total_pct);
    summary.min_vs_best =
        std::min(summary.min_vs_best, quts[i].total_pct - best);
  }
  return summary;
}

AdaptabilityResult RunFigure9(const Trace& trace, int intervals, double ratio,
                              QcShape shape, uint64_t qc_seed) {
  const SimDuration duration = trace.EndTime() + 1;
  const TimeVaryingQcGenerator schedule =
      TimeVaryingQcGenerator::AlternatingPreference(duration, intervals,
                                                    ratio, shape);
  std::unique_ptr<Scheduler> scheduler = MakeScheduler(SchedulerKind::kQuts);
  ExperimentOptions options;
  options.server = QcServerConfig();
  options.qc_seed = qc_seed;
  options.qc = QcSchedule{&schedule};
  AdaptabilityResult out;
  out.raw = RunExperiment(trace, scheduler.get(), options);

  // Late commits can extend the gained series past the max series; pad all
  // four to a common length so the plots line up second by second.
  const size_t len = std::max(
      {out.raw.qos_gained_per_s.size(), out.raw.qod_gained_per_s.size(),
       out.raw.qos_max_per_s.size(), out.raw.qod_max_per_s.size()});
  for (auto* series : {&out.raw.qos_gained_per_s, &out.raw.qod_gained_per_s,
                       &out.raw.qos_max_per_s, &out.raw.qod_max_per_s}) {
    series->resize(len, 0.0);
  }

  constexpr size_t kWindow = 5;  // the paper's 5-second moving window
  out.qos_gained = Smooth(out.raw.qos_gained_per_s, kWindow);
  out.qod_gained = Smooth(out.raw.qod_gained_per_s, kWindow);
  out.qos_max = Smooth(out.raw.qos_max_per_s, kWindow);
  out.qod_max = Smooth(out.raw.qod_max_per_s, kWindow);
  out.total_gained = Sum(out.qos_gained, out.qod_gained);
  out.total_max = Sum(out.qos_max, out.qod_max);
  out.rho = out.raw.rho_series;
  return out;
}

namespace {

double RunQutsOnSchedule(const Trace& trace,
                         const QutsScheduler::Options& quts_options,
                         uint64_t qc_seed) {
  const SimDuration duration = trace.EndTime() + 1;
  const TimeVaryingQcGenerator schedule =
      TimeVaryingQcGenerator::AlternatingPreference(duration, 4, 5.0,
                                                    QcShape::kStep);
  std::unique_ptr<Scheduler> scheduler =
      MakeScheduler(SchedulerKind::kQuts, quts_options);
  ExperimentOptions options;
  options.server = QcServerConfig();
  options.qc_seed = qc_seed;
  options.qc = QcSchedule{&schedule};
  return RunExperiment(trace, scheduler.get(), options).total_pct;
}

}  // namespace

std::vector<std::pair<double, double>> RunOmegaSensitivity(
    const Trace& trace, const std::vector<double>& omegas_s,
    uint64_t qc_seed) {
  std::vector<std::pair<double, double>> out;
  for (double omega_s : omegas_s) {
    QutsScheduler::Options quts_options;
    quts_options.adaptation_period = SecondsF(omega_s);
    out.emplace_back(omega_s, RunQutsOnSchedule(trace, quts_options, qc_seed));
  }
  return out;
}

std::vector<std::pair<double, double>> RunTauSensitivity(
    const Trace& trace, const std::vector<double>& taus_ms,
    uint64_t qc_seed) {
  std::vector<std::pair<double, double>> out;
  for (double tau_ms : taus_ms) {
    QutsScheduler::Options quts_options;
    quts_options.atom_time = static_cast<SimDuration>(tau_ms * 1000.0);
    out.emplace_back(tau_ms, RunQutsOnSchedule(trace, quts_options, qc_seed));
  }
  return out;
}

std::vector<AblationRow> RunCombinationAblation(const Trace& trace,
                                                uint64_t qc_seed) {
  std::vector<AblationRow> rows;
  for (SchedulerKind kind : {SchedulerKind::kQuts, SchedulerKind::kQueryHigh}) {
    for (QcCombination combination :
         {QcCombination::kQosIndependent, QcCombination::kQosDependent}) {
      QcProfile profile = BalancedProfile(QcShape::kStep);
      profile.combination = combination;
      const ExperimentResult result =
          RunWithProfile(trace, kind, profile, qc_seed);
      rows.push_back(AblationRow{
          ToString(kind) + "/" + ToString(combination), result.qos_pct,
          result.qod_pct, result.total_pct});
    }
  }
  return rows;
}

std::vector<AblationRow> RunQueryPolicyAblation(const Trace& trace,
                                                uint64_t qc_seed) {
  std::vector<AblationRow> rows;
  for (QueryPolicy policy :
       {QueryPolicy::kVrd, QueryPolicy::kFifo, QueryPolicy::kEdf,
        QueryPolicy::kProfitDensity}) {
    QutsScheduler::Options quts_options;
    quts_options.query_policy = policy;
    const ExperimentResult result =
        RunWithProfile(trace, SchedulerKind::kQuts,
                       BalancedProfile(QcShape::kStep), qc_seed, quts_options);
    rows.push_back(AblationRow{"quts/" + ToString(policy), result.qos_pct,
                               result.qod_pct, result.total_pct});
  }
  return rows;
}

std::vector<AblationRow> RunStalenessAblation(const Trace& trace,
                                              uint64_t qc_seed) {
  struct Variant {
    StalenessMetric metric;
    StalenessCombiner combiner;
    double uu_max;  // cutoff in the metric's unit
  };
  // uu-raw counts superseded arrivals too (cutoff 3: up to two missed
  // changes tolerated); td cutoff 500 ms: an item is "too stale" when its
  // oldest unapplied update has waited longer than half a second.
  const std::vector<Variant> variants = {
      {StalenessMetric::kUnappliedUpdates, StalenessCombiner::kMax, 1.0},
      {StalenessMetric::kUnappliedUpdates, StalenessCombiner::kSum, 1.0},
      {StalenessMetric::kUnappliedArrivals, StalenessCombiner::kMax, 3.0},
      {StalenessMetric::kTimeDifferential, StalenessCombiner::kMax, 500.0},
  };
  std::vector<AblationRow> rows;
  for (const Variant& variant : variants) {
    std::unique_ptr<Scheduler> scheduler =
        MakeScheduler(SchedulerKind::kQuts);
    ExperimentOptions options;
    options.server = QcServerConfig();
    options.server.staleness_metric = variant.metric;
    options.server.staleness_combiner = variant.combiner;
    options.qc_seed = qc_seed;
    QcProfile profile = BalancedProfile(QcShape::kStep);
    profile.uu_max = variant.uu_max;
    options.qc = profile;
    const ExperimentResult result =
        RunExperiment(trace, scheduler.get(), options);
    rows.push_back(AblationRow{
        ToString(variant.metric) + "/" + ToString(variant.combiner),
        result.qos_pct, result.qod_pct, result.total_pct});
  }
  return rows;
}

std::vector<std::pair<double, double>> RunAlphaSensitivity(
    const Trace& trace, const std::vector<double>& alphas, uint64_t qc_seed) {
  std::vector<std::pair<double, double>> out;
  for (double alpha : alphas) {
    QutsScheduler::Options quts_options;
    quts_options.alpha = alpha;
    out.emplace_back(alpha, RunQutsOnSchedule(trace, quts_options, qc_seed));
  }
  return out;
}

std::vector<AblationRow> RunSlicingAblation(const Trace& trace,
                                            uint64_t qc_seed) {
  std::vector<AblationRow> rows;
  for (QutsSlicing slicing :
       {QutsSlicing::kRandom, QutsSlicing::kDeterministic}) {
    QutsScheduler::Options quts_options;
    quts_options.slicing = slicing;
    // The QoD-heavy Table 4 point keeps rho well below 1, so the slicing
    // scheme actually matters.
    const ExperimentResult result =
        RunWithProfile(trace, SchedulerKind::kQuts, Table4Profile(0.8),
                       qc_seed, quts_options);
    rows.push_back(AblationRow{
        slicing == QutsSlicing::kRandom ? "quts/random" : "quts/deterministic",
        result.qos_pct, result.qod_pct, result.total_pct});
  }
  return rows;
}

std::vector<AblationRow> RunAdmissionAblation(const Trace& trace,
                                              uint64_t qc_seed) {
  std::vector<AblationRow> rows;
  struct Variant {
    std::string name;
    std::unique_ptr<AdmissionController> controller;  // null = admit all
  };
  std::vector<Variant> variants;
  variants.push_back(Variant{"admit-all", nullptr});
  variants.push_back(Variant{"queue-cap(64)",
                             std::make_unique<QueueCapAdmission>(64)});
  variants.push_back(
      Variant{"expected-profit",
              std::make_unique<ExpectedProfitAdmission>(Millis(7), 1.0)});
  for (Variant& variant : variants) {
    std::unique_ptr<Scheduler> scheduler = MakeScheduler(SchedulerKind::kQuts);
    ExperimentOptions options;
    options.server = QcServerConfig();
    options.server.admission = variant.controller.get();
    options.qc_seed = qc_seed;
    options.qc = BalancedProfile(QcShape::kStep);
    const ExperimentResult result =
        RunExperiment(trace, scheduler.get(), options);
    rows.push_back(AblationRow{variant.name, result.qos_pct, result.qod_pct,
                               result.total_pct});
  }
  return rows;
}

std::vector<AblationRow> RunUpdatePolicyAblation(const Trace& trace,
                                                 uint64_t qc_seed) {
  // Demand weights: how often each item is queried in this trace.
  std::vector<double> weights(static_cast<size_t>(trace.num_items), 0.0);
  for (const QueryRecord& q : trace.queries) {
    for (ItemId item : q.items) weights[static_cast<size_t>(item)] += 1.0;
  }
  std::vector<AblationRow> rows;
  for (UpdatePolicy policy :
       {UpdatePolicy::kFifo, UpdatePolicy::kDemandWeighted}) {
    QutsScheduler::Options quts_options;
    quts_options.update_policy = policy;
    if (policy == UpdatePolicy::kDemandWeighted) {
      quts_options.item_weights = &weights;
    }
    const ExperimentResult result =
        RunWithProfile(trace, SchedulerKind::kQuts,
                       Table4Profile(0.8), qc_seed, quts_options);
    rows.push_back(AblationRow{"quts/" + ToString(policy), result.qos_pct,
                               result.qod_pct, result.total_pct});
  }
  return rows;
}

std::vector<AblationRow> RunAdaptabilityComparison(const Trace& trace,
                                                   uint64_t qc_seed) {
  const SimDuration duration = trace.EndTime() + 1;
  const TimeVaryingQcGenerator schedule =
      TimeVaryingQcGenerator::AlternatingPreference(duration, 4, 5.0,
                                                    QcShape::kStep);
  std::vector<AblationRow> rows;
  for (SchedulerKind kind : PaperSchedulers()) {
    std::unique_ptr<Scheduler> scheduler = MakeScheduler(kind);
    ExperimentOptions options;
    options.server = QcServerConfig();
    options.qc_seed = qc_seed;
    options.qc = QcSchedule{&schedule};
    const ExperimentResult result =
        RunExperiment(trace, scheduler.get(), options);
    rows.push_back(AblationRow{ToString(kind), result.qos_pct,
                               result.qod_pct, result.total_pct});
  }
  return rows;
}

std::vector<RhoModelPoint> RunRhoModelValidation(
    const Trace& trace, const std::vector<double>& rhos,
    const QcProfile& profile, uint64_t qc_seed) {
  const double qos_share = profile.ExpectedQosSharePct();
  std::vector<RhoModelPoint> points;
  for (double rho : rhos) {
    QutsScheduler::Options quts_options;
    quts_options.freeze_rho = true;
    quts_options.initial_rho = rho;
    const ExperimentResult result = RunWithProfile(
        trace, SchedulerKind::kQuts, profile, qc_seed, quts_options);
    RhoModelPoint point;
    point.rho = rho;
    point.measured_total_pct = result.total_pct;
    point.modeled_total_pct =
        ModeledTotalProfit(qos_share, 1.0 - qos_share, rho);
    points.push_back(point);
  }
  return points;
}

std::vector<AblationRow> RunConcurrencyAblation(const Trace& trace,
                                                uint64_t qc_seed) {
  std::vector<AblationRow> rows;
  for (bool enable : {true, false}) {
    std::unique_ptr<Scheduler> scheduler = MakeScheduler(SchedulerKind::kQuts);
    ExperimentOptions options;
    options.server = QcServerConfig();
    options.server.enable_2plhp = enable;
    options.qc_seed = qc_seed;
    options.qc = BalancedProfile(QcShape::kStep);
    const ExperimentResult result =
        RunExperiment(trace, scheduler.get(), options);
    rows.push_back(AblationRow{enable ? "2pl-hp" : "no-cc", result.qos_pct,
                               result.qod_pct, result.total_pct});
  }
  return rows;
}

}  // namespace webdb
