#include "exp/trace_feeder.h"

#include <algorithm>

#include "util/logging.h"

namespace webdb {

TraceFeeder::TraceFeeder(WebDatabaseServer* server, const Trace* trace,
                         QcAssigner assigner)
    : server_(server), trace_(trace), assigner_(std::move(assigner)) {
  WEBDB_CHECK(server != nullptr && trace != nullptr);
  WEBDB_CHECK(assigner_ != nullptr);
}

void TraceFeeder::Start() {
  const SimTime first = NextArrival();
  if (first == kSimTimeMax) return;
  server_->sim().ScheduleAt(first, [this] { Pump(); });
}

bool TraceFeeder::Done() const {
  return next_query_ >= trace_->queries.size() &&
         next_update_ >= trace_->updates.size();
}

SimTime TraceFeeder::NextArrival() const {
  SimTime t = kSimTimeMax;
  if (next_query_ < trace_->queries.size()) {
    t = std::min(t, trace_->queries[next_query_].arrival);
  }
  if (next_update_ < trace_->updates.size()) {
    t = std::min(t, trace_->updates[next_update_].arrival);
  }
  return t;
}

void TraceFeeder::Pump() {
  const SimTime now = server_->Now();
  // Submit everything due now. Updates first on ties: an update and a query
  // arriving in the same microsecond should let the query observe it as
  // pending, which is also the deterministic choice.
  while (next_update_ < trace_->updates.size() &&
         trace_->updates[next_update_].arrival <= now) {
    const UpdateRecord& u = trace_->updates[next_update_++];
    server_->SubmitUpdate(u.item, u.value, u.exec_time);
  }
  while (next_query_ < trace_->queries.size() &&
         trace_->queries[next_query_].arrival <= now) {
    const QueryRecord& q = trace_->queries[next_query_++];
    server_->SubmitQuery(q.type, q.items, assigner_(q), q.exec_time,
                         q.tenant);
  }
  const SimTime next = NextArrival();
  if (next != kSimTimeMax) {
    server_->sim().ScheduleAt(next, [this] { Pump(); });
  }
}

}  // namespace webdb
