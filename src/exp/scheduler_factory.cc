#include "exp/scheduler_factory.h"

#include "sched/dual_queue_scheduler.h"
#include "sched/fifo_scheduler.h"
#include "util/logging.h"

namespace webdb {

std::string ToString(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kFifo:
      return "fifo";
    case SchedulerKind::kUpdateHigh:
      return "uh";
    case SchedulerKind::kQueryHigh:
      return "qh";
    case SchedulerKind::kFifoUpdateHigh:
      return "fifo-uh";
    case SchedulerKind::kFifoQueryHigh:
      return "fifo-qh";
    case SchedulerKind::kQuts:
      return "quts";
  }
  return "?";
}

namespace {

constexpr SchedulerKind kAllKinds[] = {
    SchedulerKind::kFifo,           SchedulerKind::kUpdateHigh,
    SchedulerKind::kQueryHigh,      SchedulerKind::kFifoUpdateHigh,
    SchedulerKind::kFifoQueryHigh,  SchedulerKind::kQuts,
};

}  // namespace

std::optional<SchedulerKind> SchedulerKindFromName(const std::string& name) {
  for (SchedulerKind kind : kAllKinds) {
    if (ToString(kind) == name) return kind;
  }
  return std::nullopt;
}

std::vector<std::string> ValidSchedulerNames() {
  std::vector<std::string> names;
  for (SchedulerKind kind : kAllKinds) names.push_back(ToString(kind));
  return names;
}

std::unique_ptr<Scheduler> MakeScheduler(
    SchedulerKind kind, const QutsScheduler::Options& quts_options) {
  switch (kind) {
    case SchedulerKind::kFifo:
      return std::make_unique<FifoScheduler>();
    case SchedulerKind::kUpdateHigh:
      return MakeUpdateHigh();
    case SchedulerKind::kQueryHigh:
      return MakeQueryHigh();
    case SchedulerKind::kFifoUpdateHigh:
      return MakeFifoUpdateHigh();
    case SchedulerKind::kFifoQueryHigh:
      return MakeFifoQueryHigh();
    case SchedulerKind::kQuts:
      return std::make_unique<QutsScheduler>(quts_options);
  }
  WEBDB_CHECK_MSG(false, "unknown scheduler kind");
  return nullptr;
}

std::unique_ptr<CpuSetScheduler> MakeScheduler(const SchedulerSpec& spec) {
  WEBDB_CHECK(spec.topology.num_cpus >= 1);
  if (spec.topology.num_cpus == 1) {
    return std::make_unique<SingleCpuAdapter>(
        MakeScheduler(spec.kind, spec.quts));
  }
  WEBDB_CHECK_MSG(spec.kind == SchedulerKind::kQuts,
                  "only QUTS schedules multi-core (sharded QUTS)");
  ShardedQutsScheduler::Options options;
  options.quts = spec.quts;
  options.num_cpus = spec.topology.num_cpus;
  options.num_shards = spec.topology.num_shards;
  options.enable_stealing = spec.topology.enable_stealing;
  return std::make_unique<ShardedQutsScheduler>(options);
}

std::string ToString(AdmissionKind kind) {
  switch (kind) {
    case AdmissionKind::kAdmitAll:
      return "admit-all";
    case AdmissionKind::kQueueCap:
      return "queue-cap";
    case AdmissionKind::kExpectedProfit:
      return "expected-profit";
    case AdmissionKind::kDbf:
      return "dbf";
  }
  return "?";
}

namespace {

constexpr AdmissionKind kAllAdmissionKinds[] = {
    AdmissionKind::kAdmitAll,
    AdmissionKind::kQueueCap,
    AdmissionKind::kExpectedProfit,
    AdmissionKind::kDbf,
};

}  // namespace

std::optional<AdmissionKind> AdmissionKindFromName(const std::string& name) {
  for (AdmissionKind kind : kAllAdmissionKinds) {
    if (ToString(kind) == name) return kind;
  }
  return std::nullopt;
}

std::vector<std::string> ValidAdmissionNames() {
  std::vector<std::string> names;
  for (AdmissionKind kind : kAllAdmissionKinds) names.push_back(ToString(kind));
  return names;
}

std::unique_ptr<AdmissionController> MakeAdmission(const AdmissionSpec& spec,
                                                   int num_cpus) {
  WEBDB_CHECK(num_cpus >= 1);
  switch (spec.kind) {
    case AdmissionKind::kAdmitAll:
      return nullptr;
    case AdmissionKind::kQueueCap:
      return std::make_unique<QueueCapAdmission>(spec.queue_cap);
    case AdmissionKind::kExpectedProfit:
      return std::make_unique<ExpectedProfitAdmission>(spec.typical_exec,
                                                       spec.min_worth);
    case AdmissionKind::kDbf: {
      DbfAdmission::Options options;
      options.num_cpus = num_cpus;
      options.supply_factor = spec.supply_factor;
      options.tenants = spec.tenants;
      return std::make_unique<DbfAdmission>(std::move(options));
    }
  }
  WEBDB_CHECK_MSG(false, "unknown admission kind");
  return nullptr;
}

std::vector<SchedulerKind> PaperSchedulers() {
  return {SchedulerKind::kFifo, SchedulerKind::kUpdateHigh,
          SchedulerKind::kQueryHigh, SchedulerKind::kQuts};
}

}  // namespace webdb
