#include "exp/report.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "util/csv.h"
#include "util/logging.h"

namespace webdb {

namespace {

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

bool WriteExperimentCsv(const std::string& path,
                        const std::vector<ExperimentResult>& results) {
  CsvWriter writer(path);
  if (!writer.ok()) return false;
  writer.WriteRow({"scheduler", "qos_pct", "qod_pct", "total_pct",
                   "qos_max_pct", "avg_response_ms", "avg_staleness",
                   "cpu_utilization", "queries_committed", "queries_dropped",
                   "queries_expired", "query_restarts", "updates_applied",
                   "updates_invalidated", "preemptions"});
  for (const ExperimentResult& r : results) {
    writer.WriteRow({r.scheduler, Num(r.qos_pct), Num(r.qod_pct),
                     Num(r.total_pct), Num(r.qos_max_pct),
                     Num(r.avg_response_ms), Num(r.avg_staleness),
                     Num(r.cpu_utilization),
                     std::to_string(r.queries_committed),
                     std::to_string(r.queries_dropped),
                     std::to_string(r.queries_expired),
                     std::to_string(r.query_restarts),
                     std::to_string(r.updates_applied),
                     std::to_string(r.updates_invalidated),
                     std::to_string(r.preemptions)});
  }
  return writer.Close();
}

bool WriteSeriesCsv(const std::string& path,
                    const std::vector<std::string>& names,
                    const std::vector<std::vector<double>>& series) {
  WEBDB_CHECK(names.size() == series.size());
  CsvWriter writer(path);
  if (!writer.ok()) return false;
  std::vector<std::string> header = {"t"};
  header.insert(header.end(), names.begin(), names.end());
  writer.WriteRow(header);
  size_t length = 0;
  for (const auto& s : series) length = std::max(length, s.size());
  for (size_t t = 0; t < length; ++t) {
    std::vector<std::string> row = {std::to_string(t)};
    for (const auto& s : series) {
      row.push_back(Num(t < s.size() ? s[t] : 0.0));
    }
    writer.WriteRow(row);
  }
  return writer.Close();
}

bool WritePairsCsv(const std::string& path, const std::string& x_name,
                   const std::string& y_name,
                   const std::vector<std::pair<double, double>>& pairs) {
  CsvWriter writer(path);
  if (!writer.ok()) return false;
  writer.WriteRow({x_name, y_name});
  for (const auto& [x, y] : pairs) {
    writer.WriteRow({Num(x), Num(y)});
  }
  return writer.Close();
}

std::string CsvDirFromEnv() {
  const char* dir = std::getenv("WEBDB_CSV_DIR");
  return dir == nullptr ? std::string() : std::string(dir);
}

}  // namespace webdb
