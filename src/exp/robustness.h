// Workload-robustness study (beyond the paper): how the scheduler ranking
// responds to the two trace features the calibration in EXPERIMENTS.md
// leans on — the query/update popularity correlation (Figure 5c) and the
// flash-crowd intensity (Figure 5a). Each knob regenerates the synthetic
// trace and replays the Figure 6 comparison.

#ifndef WEBDB_EXP_ROBUSTNESS_H_
#define WEBDB_EXP_ROBUSTNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "exp/sweep_runner.h"
#include "trace/stock_trace_generator.h"

namespace webdb {

struct RobustnessRow {
  double knob = 0.0;  // the swept parameter's value
  // Total profit percentage per scheduler.
  double fifo = 0.0;
  double uh = 0.0;
  double qh = 0.0;
  double quts = 0.0;

  // QUTS's margin over the best fixed dual-queue policy.
  double QutsVsBestFixed() const;
};

// Sweeps the query/update popularity correlation (0 = independent orders,
// 1 = the hottest-queried stocks are also the hottest-updated).
// `base` controls everything else about the trace; its duration is used
// as-is, so pass a shortened config for quick runs.
std::vector<RobustnessRow> RunCorrelationRobustness(
    StockTraceConfig base, const std::vector<double>& correlations,
    uint64_t qc_seed = 7, const SweepConfig& sweep = SweepConfig());

// Sweeps the flash-crowd gain (1 = no spikes ... higher = deeper query
// overload during episodes).
std::vector<RobustnessRow> RunSpikeRobustness(
    StockTraceConfig base, const std::vector<double>& gains,
    uint64_t qc_seed = 7, const SweepConfig& sweep = SweepConfig());

}  // namespace webdb

#endif  // WEBDB_EXP_ROBUSTNESS_H_
