#include "exp/sweep_runner.h"

#include <memory>

#include "util/logging.h"

namespace webdb {

int ResolveJobs(int jobs) {
  if (jobs >= 1) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

SweepRunner::SweepRunner(SweepConfig config)
    : config_(config), jobs_(ResolveJobs(config.jobs)) {}

std::vector<ExperimentResult> SweepRunner::RunPoints(
    const std::vector<Point>& points) const {
  return Map(points.size(), [&points](size_t i) {
    const Point& point = points[i];
    WEBDB_CHECK(point.trace != nullptr);
    std::unique_ptr<Scheduler> scheduler =
        MakeScheduler(point.scheduler, point.quts);
    return RunExperiment(*point.trace, scheduler.get(), point.options);
  });
}

void SweepRunner::RecordSweepMetrics(size_t runs, int64_t wall_us) const {
  if (config_.registry == nullptr) return;
  MetricRegistry& registry = *config_.registry;
  registry.GetCounter("sweep.runs").Increment(static_cast<int64_t>(runs));
  ++registry.GetCounter("sweep.sweeps");
  registry.GetCounter("sweep.wall_us").Increment(wall_us);
  if (wall_us > 0) {
    registry.GetGauge("sweep.points_per_s")
        .Set(static_cast<double>(runs) * 1e6 / static_cast<double>(wall_us));
  }
}

}  // namespace webdb
