#include "exp/sweep_runner.h"

#include <cinttypes>
#include <cstdio>
#include <memory>

#include "audit/invariant_auditor.h"
#include "util/logging.h"

namespace webdb {

namespace internal {

void SweepAbort::Capture() {
  util::MutexLock lock(mu_);
  if (error_ == nullptr) error_ = std::current_exception();
  failed_.store(true, std::memory_order_relaxed);
}

void SweepAbort::RethrowIfFailed() {
  util::MutexLock lock(mu_);
  if (error_ != nullptr) std::rethrow_exception(error_);
}

}  // namespace internal

int ResolveJobs(int jobs) {
  if (jobs >= 1) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

SweepRunner::SweepRunner(SweepConfig config)
    : config_(config), jobs_(ResolveJobs(config.jobs)) {}

std::vector<ExperimentResult> SweepRunner::RunPoints(
    const std::vector<Point>& points) const {
  const bool want_hash = config_.print_audit_hash;
  std::vector<ExperimentResult> results =
      Map(points.size(), [&points, want_hash](size_t i) {
        const Point& point = points[i];
        WEBDB_CHECK(point.trace != nullptr);
        ExperimentOptions options = point.options;
        options.compute_end_state_hash |= want_hash;
        return RunExperiment(*point.trace, point.spec, options);
      });
  if (config_.print_audit_hash) {
    // Combined in run-id (submission) order, so the line is byte-identical
    // at any --jobs value — same contract as the result vector itself.
    audit::Fnv1aHasher combined;
    for (const ExperimentResult& result : results) {
      combined.MixU64(result.end_state_hash);
    }
    std::fprintf(stderr, "[audit] end-state hash: %016" PRIx64 " (%zu runs)\n",
                 combined.hash(), results.size());
  }
  return results;
}

void SweepRunner::RecordSweepMetrics(size_t runs, int64_t wall_us) const {
  if (config_.registry == nullptr) return;
  MetricRegistry& registry = *config_.registry;
  registry.GetCounter("sweep.runs").Increment(static_cast<int64_t>(runs));
  ++registry.GetCounter("sweep.sweeps");
  registry.GetCounter("sweep.wall_us").Increment(wall_us);
  if (wall_us > 0) {
    registry.GetGauge("sweep.points_per_s")
        .Set(static_cast<double>(runs) * 1e6 / static_cast<double>(wall_us));
  }
}

}  // namespace webdb
