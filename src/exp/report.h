// CSV export of experiment results and time series, so bench output can be
// post-processed (plotted) outside the repo. Benches write tables to stdout
// for humans; set WEBDB_CSV_DIR to also get machine-readable files.

#ifndef WEBDB_EXP_REPORT_H_
#define WEBDB_EXP_REPORT_H_

#include <string>
#include <utility>
#include <vector>

#include "exp/experiment.h"

namespace webdb {

// Writes one row per result with the headline columns (scheduler, profit
// percentages, response time, staleness, lifecycle counters). Returns false
// on IO failure.
bool WriteExperimentCsv(const std::string& path,
                        const std::vector<ExperimentResult>& results);

// Writes per-second series as columns: t, <name0>, <name1>, ... All series
// are padded with zeros to the longest length.
bool WriteSeriesCsv(const std::string& path,
                    const std::vector<std::string>& names,
                    const std::vector<std::vector<double>>& series);

// Writes (x, y) pairs with a header.
bool WritePairsCsv(const std::string& path, const std::string& x_name,
                   const std::string& y_name,
                   const std::vector<std::pair<double, double>>& pairs);

// Directory requested via WEBDB_CSV_DIR, or empty when unset.
std::string CsvDirFromEnv();

}  // namespace webdb

#endif  // WEBDB_EXP_REPORT_H_
