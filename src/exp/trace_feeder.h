// Feeds a trace into a WebDatabaseServer as simulation events. Arrivals are
// pumped one at a time through a chained event (constant event-queue
// footprint regardless of trace size). Each query is assigned a Quality
// Contract by the caller-supplied assigner at its arrival instant.

#ifndef WEBDB_EXP_TRACE_FEEDER_H_
#define WEBDB_EXP_TRACE_FEEDER_H_

#include <cstddef>
#include <functional>

#include "qc/quality_contract.h"
#include "server/web_database_server.h"
#include "trace/trace.h"

namespace webdb {

class TraceFeeder {
 public:
  using QcAssigner =
      std::function<QualityContract(const QueryRecord& record)>;

  // `server` and `trace` must outlive the feeder; the feeder must outlive
  // the simulation run it drives.
  TraceFeeder(WebDatabaseServer* server, const Trace* trace,
              QcAssigner assigner);

  // Schedules the first arrival. Call once, before running the simulator.
  void Start();

  bool Done() const;

 private:
  void Pump();
  // Arrival time of the next unsubmitted record, or kSimTimeMax.
  SimTime NextArrival() const;

  WebDatabaseServer* server_;
  const Trace* trace_;
  QcAssigner assigner_;
  size_t next_query_ = 0;
  size_t next_update_ = 0;
};

}  // namespace webdb

#endif  // WEBDB_EXP_TRACE_FEEDER_H_
