#include "exp/overload_scenarios.h"

#include <algorithm>
#include <iterator>

#include "trace/stock_trace_generator.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/seed.h"

namespace webdb {

std::string ToString(OverloadScenario scenario) {
  switch (scenario) {
    case OverloadScenario::kMarketOpen:
      return "market-open";
    case OverloadScenario::kUpdateStorm:
      return "update-storm";
    case OverloadScenario::kScaleUp:
      return "scale-up";
  }
  return "?";
}

std::optional<OverloadScenario> OverloadScenarioFromName(
    const std::string& name) {
  for (OverloadScenario scenario : AllOverloadScenarios()) {
    if (ToString(scenario) == name) return scenario;
  }
  return std::nullopt;
}

std::vector<OverloadScenario> AllOverloadScenarios() {
  return {OverloadScenario::kMarketOpen, OverloadScenario::kUpdateStorm,
          OverloadScenario::kScaleUp};
}

namespace {

StockTraceConfig BaseConfig(const OverloadScenarioConfig& config,
                            uint64_t seed) {
  StockTraceConfig base;
  base.seed = seed;
  base.num_stocks = config.num_stocks;
  base.duration = config.duration;
  base.query_rate = config.query_rate;
  base.query_spike_count = 0;  // the scenario, not the generator, bursts
  base.update_rate_start = config.update_rate;
  base.update_rate_end = config.update_rate;
  return base;
}

}  // namespace

Trace MakeOverloadTrace(OverloadScenario scenario,
                        const OverloadScenarioConfig& config) {
  WEBDB_CHECK(config.scale >= 1.0);
  WEBDB_CHECK(config.duration > 0);
  switch (scenario) {
    case OverloadScenario::kMarketOpen: {
      // Base load for the whole window plus a query flash crowd in the
      // first fifth: (scale - 1)x extra queries, nearly no extra updates.
      Trace base = GenerateStockTrace(BaseConfig(config, config.seed));
      StockTraceConfig burst =
          BaseConfig(config, DeriveSeed(config.seed, 0xB0057));
      burst.duration = config.duration / 5;
      burst.query_rate = config.query_rate * (config.scale - 1.0);
      burst.update_rate_start = 1.0;
      burst.update_rate_end = 1.0;
      if (burst.query_rate <= 0.0) return base;
      return MergeTraces(base, GenerateStockTrace(burst));
    }
    case OverloadScenario::kUpdateStorm: {
      StockTraceConfig storm = BaseConfig(config, config.seed);
      storm.update_rate_start = config.update_rate * config.scale;
      storm.update_rate_end = config.update_rate * config.scale;
      return GenerateStockTrace(storm);
    }
    case OverloadScenario::kScaleUp: {
      StockTraceConfig scaled = BaseConfig(config, config.seed);
      scaled.query_rate = config.query_rate * config.scale;
      scaled.update_rate_start = config.update_rate * config.scale;
      scaled.update_rate_end = config.update_rate * config.scale;
      return GenerateStockTrace(scaled);
    }
  }
  WEBDB_CHECK_MSG(false, "unknown overload scenario");
  return Trace{};
}

Trace MergeTraces(const Trace& a, const Trace& b) {
  WEBDB_CHECK(a.num_items == b.num_items);
  Trace out;
  out.num_items = a.num_items;
  out.queries.reserve(a.queries.size() + b.queries.size());
  std::merge(a.queries.begin(), a.queries.end(), b.queries.begin(),
             b.queries.end(), std::back_inserter(out.queries),
             [](const QueryRecord& x, const QueryRecord& y) {
               return x.arrival < y.arrival;
             });
  out.updates.reserve(a.updates.size() + b.updates.size());
  std::merge(a.updates.begin(), a.updates.end(), b.updates.begin(),
             b.updates.end(), std::back_inserter(out.updates),
             [](const UpdateRecord& x, const UpdateRecord& y) {
               return x.arrival < y.arrival;
             });
  out.CheckValid();
  return out;
}

void AssignTenants(Trace* trace, const TenantSet& tenants, uint64_t seed) {
  WEBDB_CHECK(trace != nullptr);
  if (tenants.NumTiers() <= 1) return;
  double total_share = 0.0;
  for (const TenantTier& tier : tenants.tiers()) {
    total_share += tier.traffic_share;
  }
  WEBDB_CHECK(total_share > 0.0);
  Rng rng(DeriveSeed(seed, 0x7e7a));
  for (QueryRecord& query : trace->queries) {
    double draw = rng.Uniform(0.0, total_share);
    TenantId tenant = 0;
    for (int32_t tier = 0; tier < tenants.NumTiers(); ++tier) {
      draw -= tenants.Tier(tier).traffic_share;
      if (draw <= 0.0) {
        tenant = tier;
        break;
      }
      tenant = tier;  // numeric tail: last tier with positive share
    }
    query.tenant = tenant;
  }
}

}  // namespace webdb
