// Adversarial overload scenarios: traces engineered to exceed the hardware,
// the stress side of the admission-control work (sched/admission.h). Three
// first-class shapes:
//
//   market-open   a flash crowd at the opening bell — the base trace plus a
//                 `scale`x query burst merged into the first fifth of the
//                 window (Figure 5a's bursts, pushed past saturation);
//   update-storm  a sustained `scale`x update rate that starves queries on
//                 any update-favoring policy;
//   scale-up      the whole trace (queries and updates) at `scale`x — the
//                 10-100x re-anchor of the acceptance criteria.
//
// Everything is determined by the config's seed (burst arrivals draw from
// DeriveSeed(seed, ...) so scenarios stay independent), and every scenario
// works at any CPU count.

#ifndef WEBDB_EXP_OVERLOAD_SCENARIOS_H_
#define WEBDB_EXP_OVERLOAD_SCENARIOS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sched/admission.h"
#include "trace/trace.h"
#include "util/time.h"

namespace webdb {

enum class OverloadScenario {
  kMarketOpen,
  kUpdateStorm,
  kScaleUp,
};

std::string ToString(OverloadScenario scenario);
// Parses "market-open", "update-storm", "scale-up".
std::optional<OverloadScenario> OverloadScenarioFromName(
    const std::string& name);
std::vector<OverloadScenario> AllOverloadScenarios();

struct OverloadScenarioConfig {
  uint64_t seed = 2007;
  // Overload multiplier: burst gain for market-open, storm gain for
  // update-storm, whole-trace gain for scale-up.
  double scale = 10.0;
  SimDuration duration = Seconds(30);
  int32_t num_stocks = 256;
  // Baseline (pre-scale) arrival rates per second.
  double query_rate = 25.0;
  double update_rate = 60.0;
};

Trace MakeOverloadTrace(OverloadScenario scenario,
                        const OverloadScenarioConfig& config);

// Merges two traces over the same item space into one (arrival-sorted).
Trace MergeTraces(const Trace& a, const Trace& b);

// Assigns a tenant tier to every query, i.i.d. by the tiers'
// traffic_share, deterministically from `seed`. Single-tier sets leave the
// trace untouched.
void AssignTenants(Trace* trace, const TenantSet& tenants, uint64_t seed);

}  // namespace webdb

#endif  // WEBDB_EXP_OVERLOAD_SCENARIOS_H_
