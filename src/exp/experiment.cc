#include "exp/experiment.h"

#include <algorithm>
#include <memory>
#include <optional>

#include "audit/invariant_auditor.h"
#include "core/quts_scheduler.h"
#include "core/sharded_quts_scheduler.h"
#include "db/database.h"
#include "exp/trace_feeder.h"
#include "qc/profit_ledger.h"
#include "server/web_database_server.h"
#include "util/logging.h"
#include "util/rng.h"

namespace webdb {

namespace {

std::vector<double> BucketSums(const TimeSeries& series) {
  std::vector<double> out(series.NumBuckets());
  for (size_t i = 0; i < out.size(); ++i) out[i] = series.BucketSum(i);
  return out;
}

}  // namespace

ExperimentResult RunExperiment(const Trace& trace, CpuSetScheduler* scheduler,
                               const ExperimentOptions& options) {
  WEBDB_CHECK(scheduler != nullptr);
  trace.CheckValid();

  Database db(trace.num_items);
  WebDatabaseServer server(&db, scheduler, options.server);
  // The trace shape is known up front: pre-size the transaction pools and
  // the event arena so the run itself is allocation-free on the hot path.
  server.ReserveCapacity(trace.queries.size(), trace.updates.size());

  Rng qc_rng(options.qc_seed);
  std::optional<QcGenerator> generator;
  if (const QcProfile* profile = std::get_if<QcProfile>(&options.qc)) {
    generator.emplace(*profile);
  }
  const QcSchedule* schedule = std::get_if<QcSchedule>(&options.qc);
  if (schedule != nullptr) WEBDB_CHECK(schedule->generator != nullptr);

  TraceFeeder feeder(&server, &trace,
                     [&](const QueryRecord& record) -> QualityContract {
                       if (generator.has_value()) return generator->Next(qc_rng);
                       if (schedule != nullptr) {
                         return schedule->generator->Next(record.arrival,
                                                          qc_rng);
                       }
                       return QualityContract();  // ZeroContracts
                     });
  feeder.Start();
  server.Run();
  WEBDB_CHECK(feeder.Done());
  // The drained end state is the cheapest point for a full audit: every
  // queue is empty, so the conservation sums cover the whole trace.
  if constexpr (audit::kEnabled) server.AuditInvariants();

  ExperimentResult result;
  result.scheduler = scheduler->Name();

  const ProfitLedger& ledger = server.ledger();
  result.qos_pct = ledger.QosPct();
  result.qod_pct = ledger.QodPct();
  result.total_pct = ledger.TotalPct();
  result.qos_max_pct = ledger.QosMaxPct();
  result.qod_max_pct = ledger.QodMaxPct();
  result.qos_gained = ledger.qos_gained();
  result.qod_gained = ledger.qod_gained();
  result.qos_max = ledger.qos_max();
  result.qod_max = ledger.qod_max();

  const ServerMetrics& metrics = server.metrics();
  result.avg_response_ms = metrics.response_time_ms.mean();
  result.avg_staleness = metrics.staleness.mean();
  result.cpu_utilization = server.CpuUtilization();
  result.queries_committed = metrics.queries_committed;
  result.queries_dropped = metrics.queries_dropped;
  result.queries_expired = metrics.queries_expired;
  result.query_restarts = metrics.query_restarts;
  result.updates_applied = metrics.updates_applied;
  result.updates_invalidated = metrics.updates_invalidated;
  result.update_restarts = metrics.update_restarts;
  result.preemptions = metrics.preemptions;
  result.queries_rejected = metrics.queries_rejected;
  result.queries_shed = metrics.queries_shed;
  result.queries_fused = metrics.queries_fused;
  result.fusion_groups = metrics.fusion_groups;
  result.queries_cache_hits = metrics.queries_cache_hits;
  result.cache_fills = metrics.cache_fills;
  result.cpu_busy_ms = ToMillis(server.TotalBusyTime());
  if (server.config().tenants != nullptr) {
    const TenantSet& tenants = *server.config().tenants;
    for (const auto& [tenant, counters] : metrics.tenants()) {
      ExperimentResult::TenantResult row;
      row.tenant = tenant;
      row.name = tenant >= 0 && tenant < tenants.NumTiers()
                     ? tenants.Tier(tenant).name
                     : "?";
      row.submitted = counters.submitted->value();
      row.committed = counters.committed->value();
      row.rejected = counters.rejected->value();
      row.shed = counters.shed->value();
      row.dropped = counters.dropped->value();
      row.profit = counters.profit->value();
      result.tenants.push_back(std::move(row));
    }
  }
  for (const ServerMetrics::QueueSample& sample : metrics.queue_samples) {
    result.peak_queued_queries =
        std::max(result.peak_queued_queries, sample.queries);
    result.peak_queued_updates =
        std::max(result.peak_queued_updates, sample.updates);
  }

  result.qos_gained_per_s = BucketSums(ledger.qos_gained_series());
  result.qod_gained_per_s = BucketSums(ledger.qod_gained_series());
  result.qos_max_per_s = BucketSums(ledger.qos_max_series());
  result.qod_max_per_s = BucketSums(ledger.qod_max_series());

  // ρ series lives either on a single-CPU QUTS behind the adapter or on the
  // sharded scheduler directly.
  if (auto* adapter = dynamic_cast<SingleCpuAdapter*>(scheduler)) {
    if (auto* quts = dynamic_cast<QutsScheduler*>(adapter->inner())) {
      result.rho_series = quts->rho_series();
    }
  } else if (auto* sharded = dynamic_cast<ShardedQutsScheduler*>(scheduler)) {
    result.rho_series = sharded->rho_series();
  }

  if (options.compute_end_state_hash) {
    result.end_state_hash = server.EndStateHash();
  }

  // Pull the scheduler's final state into the registry, then capture it.
  scheduler->ExportStats(server.metric_registry());
  result.registry = server.metric_registry().Snap(server.Now());
  result.registry_series = server.metric_registry().series();
  return result;
}

ExperimentResult RunExperiment(const Trace& trace, Scheduler* scheduler,
                               const ExperimentOptions& options) {
  WEBDB_CHECK(scheduler != nullptr);
  SingleCpuAdapter adapter(scheduler);
  return RunExperiment(trace, &adapter, options);
}

ExperimentResult RunExperiment(const Trace& trace, const SchedulerSpec& spec,
                               const ExperimentOptions& options) {
  std::unique_ptr<CpuSetScheduler> scheduler = MakeScheduler(spec);
  // The spec may also describe admission control; a fresh controller per
  // run keeps SweepRunner's one-owner-per-point rule intact.
  std::unique_ptr<AdmissionController> admission =
      MakeAdmission(spec.admission, spec.topology.num_cpus);
  ExperimentOptions run_options = options;
  if (admission != nullptr) {
    WEBDB_CHECK_MSG(options.server.admission == nullptr,
                    "admission set both on the spec and on server config");
    run_options.server.admission = admission.get();
  }
  if (spec.admission.tenants.NumTiers() > 1) {
    WEBDB_CHECK_MSG(options.server.tenants == nullptr,
                    "tenants set both on the spec and on server config");
    run_options.server.tenants = &spec.admission.tenants;
  }
  return RunExperiment(trace, scheduler.get(), run_options);
}

}  // namespace webdb
