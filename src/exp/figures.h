// Per-figure experiment drivers. Each function reproduces the data behind
// one figure/table of the paper (see DESIGN.md section 3 for the index);
// the bench binaries only format what these return.

#ifndef WEBDB_EXP_FIGURES_H_
#define WEBDB_EXP_FIGURES_H_

#include <string>
#include <utility>
#include <vector>

#include "db/staleness.h"
#include "exp/experiment.h"
#include "exp/scheduler_factory.h"
#include "exp/sweep_runner.h"
#include "qc/qc_generator.h"
#include "trace/trace.h"

namespace webdb {

// --- Canonical sweep grids ---------------------------------------------------
// The exact parameter grids behind the figures, defined once so the bench
// binaries and the tests exercise the same sweep construction (they used to
// carry private copies that could drift apart).

// Table 4: QODmax% = 0.1 ... 0.9 (Figures 7-8).
std::vector<double> Table4QodShares();
// Figure 10a: adaptation period omega in seconds, 0.1 ... 100.
std::vector<double> OmegaSensitivityGrid();
// Figure 10b: atom time tau in milliseconds, 1 ... 1000.
std::vector<double> TauSensitivityGrid();
// Aging factor alpha sweep (bench_ablation).
std::vector<double> AlphaSensitivityGrid();
// Frozen-rho grid for the Eq. 3 model validation (bench_model).
std::vector<double> RhoValidationGrid();
// Robustness knobs (bench_robustness): popularity correlation and
// flash-crowd gain.
std::vector<double> CorrelationRobustnessGrid();
std::vector<double> SpikeRobustnessGrid();

// Every driver below takes a SweepConfig and fans its independent runs out
// through SweepRunner; results are identical for any `jobs` value. The
// default (jobs = 1) runs serially on the calling thread.

// --- Figure 1: response time vs staleness under naive policies -------------
struct TradeoffRow {
  std::string policy;
  double avg_response_ms = 0.0;
  double avg_staleness_uu = 0.0;
  // Peak queue depths (1-second sampling) — not in the paper's figure, but
  // they show where the response-time orders of magnitude come from.
  int64_t peak_queued_queries = 0;
  int64_t peak_queued_updates = 0;
};

// FIFO, FIFO-UH, FIFO-QH with no QCs and no lifetime drops.
std::vector<TradeoffRow> RunFigure1(const Trace& trace,
                                    const SweepConfig& sweep = SweepConfig());

// --- Figures 6-8: profit percentages ----------------------------------------
struct ProfitBarRow {
  std::string policy;
  double qos_pct = 0.0;
  double qod_pct = 0.0;
  double TotalPct() const { return qos_pct + qod_pct; }
};

// Figure 6: the four paper schedulers under the balanced profile, one call
// per QC shape.
std::vector<ProfitBarRow> RunFigure6(const Trace& trace, QcShape shape,
                                     uint64_t qc_seed = 7,
                                     const SweepConfig& sweep = SweepConfig());

struct SweepPoint {
  double qod_share_pct = 0.0;  // the Table 4 QODmax% knob
  double qos_pct = 0.0;
  double qod_pct = 0.0;
  double total_pct = 0.0;
  double qos_max_pct = 0.0;  // the diagonal reference line
};

// Figures 7 and 8: one scheduler across the nine Table 4 QC sets
// (QODmax% = 0.1 ... 0.9, step QCs).
std::vector<SweepPoint> RunQcSweep(const Trace& trace, SchedulerKind kind,
                                   uint64_t qc_seed = 7,
                                   const SweepConfig& sweep = SweepConfig());

// The paper's headline comparison: max over the sweep of
// (QUTS total - other total) / other total.
struct ImprovementSummary {
  double max_vs_uh = 0.0;  // paper: up to 101.3%
  double max_vs_qh = 0.0;  // paper: up to 40.1%
  double min_vs_best = 0.0;  // worst case vs max(UH, QH); >= 0 means QUTS
                             // always matches the best fixed policy
};
ImprovementSummary SummarizeImprovement(
    const std::vector<SweepPoint>& uh, const std::vector<SweepPoint>& qh,
    const std::vector<SweepPoint>& quts);

// --- Figure 9: adaptability under changing preferences ----------------------
struct AdaptabilityResult {
  // Per-second, smoothed with the paper's 5-second moving window.
  std::vector<double> total_gained;
  std::vector<double> total_max;
  std::vector<double> qos_gained;
  std::vector<double> qos_max;
  std::vector<double> qod_gained;
  std::vector<double> qod_max;
  // (time, ρ) per adaptation period.
  std::vector<std::pair<SimTime, double>> rho;
  ExperimentResult raw;
};

// QUTS on `trace` (pass a ~300 s prefix to match the paper) with the
// alternating 1:5 / 5:1 preference schedule over `intervals` segments.
AdaptabilityResult RunFigure9(const Trace& trace, int intervals = 4,
                              double ratio = 5.0,
                              QcShape shape = QcShape::kStep,
                              uint64_t qc_seed = 7);

// --- Figure 10: parameter sensitivity ---------------------------------------
// Total profit percentage of QUTS for each adaptation period ω (seconds),
// same setup as Figure 9, τ = 10 ms.
std::vector<std::pair<double, double>> RunOmegaSensitivity(
    const Trace& trace, const std::vector<double>& omegas_s,
    uint64_t qc_seed = 7, const SweepConfig& sweep = SweepConfig());

// Total profit percentage of QUTS for each atom time τ (milliseconds),
// ω = 1000 ms.
std::vector<std::pair<double, double>> RunTauSensitivity(
    const Trace& trace, const std::vector<double>& taus_ms,
    uint64_t qc_seed = 7, const SweepConfig& sweep = SweepConfig());

// --- Ablations (DESIGN.md A1-A3 + α sensitivity) -----------------------------
struct AblationRow {
  std::string variant;
  double qos_pct = 0.0;
  double qod_pct = 0.0;
  double total_pct = 0.0;
};

// A1: QoS-Independent vs QoS-Dependent combination, QUTS and QH.
std::vector<AblationRow> RunCombinationAblation(
    const Trace& trace, uint64_t qc_seed = 7,
    const SweepConfig& sweep = SweepConfig());
// A2: low-level query policy inside QUTS (VRD, FIFO, EDF, profit-density).
std::vector<AblationRow> RunQueryPolicyAblation(
    const Trace& trace, uint64_t qc_seed = 7,
    const SweepConfig& sweep = SweepConfig());
// A3: staleness metric (#uu vs td) and combiner (max vs sum vs avg) on QUTS.
std::vector<AblationRow> RunStalenessAblation(
    const Trace& trace, uint64_t qc_seed = 7,
    const SweepConfig& sweep = SweepConfig());
// Aging-factor sweep (the paper asserts "the exact α does not matter much").
std::vector<std::pair<double, double>> RunAlphaSensitivity(
    const Trace& trace, const std::vector<double>& alphas,
    uint64_t qc_seed = 7, const SweepConfig& sweep = SweepConfig());
// A4: random (paper) vs deterministic atom-side selection in QUTS.
std::vector<AblationRow> RunSlicingAblation(
    const Trace& trace, uint64_t qc_seed = 7,
    const SweepConfig& sweep = SweepConfig());
// A5: admission control under overload (admit-all vs queue-cap vs
// expected-profit shedding), QUTS scheduler.
std::vector<AblationRow> RunAdmissionAblation(
    const Trace& trace, uint64_t qc_seed = 7,
    const SweepConfig& sweep = SweepConfig());
// A6: 2PL-HP on/off — what concurrency control costs/buys, QUTS scheduler.
std::vector<AblationRow> RunConcurrencyAblation(
    const Trace& trace, uint64_t qc_seed = 7,
    const SweepConfig& sweep = SweepConfig());
// A7: low-level update policy inside QUTS — the paper's FIFO vs a
// demand-weighted queue that applies updates on frequently-queried items
// first (weights derived from the trace's per-item query counts).
std::vector<AblationRow> RunUpdatePolicyAblation(
    const Trace& trace, uint64_t qc_seed = 7,
    const SweepConfig& sweep = SweepConfig());
// Beyond Figure 9: every paper scheduler under the changing-preference
// schedule, showing that only QUTS follows the flips.
std::vector<AblationRow> RunAdaptabilityComparison(
    const Trace& trace, uint64_t qc_seed = 7,
    const SweepConfig& sweep = SweepConfig());

// --- Eq. 3 model validation --------------------------------------------------
struct RhoModelPoint {
  double rho = 0.0;
  double measured_total_pct = 0.0;  // QUTS with frozen ρ
  double modeled_total_pct = 0.0;   // QOSmax%·ρ + QODmax%·ρ(1-ρ)
};

// Freezes QUTS's ρ at each value and measures the earned profit share,
// against the paper's closed-form model (Section 4.1). The paper never
// plots this curve; it is the direct check that Eq. 4's optimum is real.
std::vector<RhoModelPoint> RunRhoModelValidation(
    const Trace& trace, const std::vector<double>& rhos,
    const QcProfile& profile, uint64_t qc_seed = 7,
    const SweepConfig& sweep = SweepConfig());

}  // namespace webdb

#endif  // WEBDB_EXP_FIGURES_H_
