// SweepRunner: fans independent experiment runs out over a std::thread
// pool, with results bit-identical at any --jobs value.
//
// Every figure and table in the paper's evaluation is a sweep of mutually
// independent simulation runs, so the whole evaluation parallelizes at the
// run level. The determinism contract that makes this safe to rely on:
//
//   * A sweep is a list of run points indexed by run id 0..n-1. Everything
//     a run depends on — its options, its scheduler, and (when it wants a
//     fresh stream) its RNG seed via SeedFor(run_id) = DeriveSeed(
//     base_seed, run_id) — is a pure function of the run id, fixed at
//     submission time. No run reads another run's output or any
//     thread-local state.
//   * Results are collected into a vector indexed by run id (submission
//     order), so the output layout is independent of completion order.
//   * Each run builds its own Database / WebDatabaseServer / Scheduler and
//     therefore its own MetricRegistry and (if configured) Tracer; the
//     obs layer is single-threaded per instance (see metric_registry.h)
//     and is never shared across workers. The optional sweep-level
//     registry (sweep.runs / sweep.wall_us / sweep.points_per_s) is
//     touched only on the submitting thread, after the pool has joined.
//
// Consequently `jobs = 1` and `jobs = N` produce byte-identical results
// for any N and any interleaving — tests/sweep_runner_test.cc pins this.
//
// Shared inputs (the Trace, a TimeVaryingQcGenerator, QcProfile grids) are
// captured by const reference and must be treated as read-only for the
// duration of the sweep. Anything mutable (an AdmissionController, a
// Tracer) must be owned by exactly one run point.

#ifndef WEBDB_EXP_SWEEP_RUNNER_H_
#define WEBDB_EXP_SWEEP_RUNNER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <thread>
#include <type_traits>
#include <vector>

#include "exp/experiment.h"
#include "exp/scheduler_factory.h"
#include "obs/metric_registry.h"
#include "util/mutex.h"
#include "util/seed.h"
#include "util/thread_annotations.h"

namespace webdb {

namespace internal {

// Cross-worker failure channel for SweepRunner::Map: the first exception
// (by completion order) wins, subsequent workers see failed() and abandon
// their queues. The only cross-thread shared mutable state in the sweep
// path, so the only mutex — its guarding is annotated and checked by
// Clang's -Wthread-safety (util/thread_annotations.h).
class SweepAbort {
 public:
  // True once any worker captured an exception; queued runs are abandoned.
  bool failed() const { return failed_.load(std::memory_order_relaxed); }

  // Records std::current_exception() if it is the first failure.
  void Capture() WEBDB_EXCLUDES(mu_);

  // Rethrows the first captured exception on the calling thread, if any.
  // Call only after every worker joined.
  void RethrowIfFailed() WEBDB_EXCLUDES(mu_);

 private:
  util::Mutex mu_;
  std::atomic<bool> failed_{false};
  std::exception_ptr error_ WEBDB_GUARDED_BY(mu_);
};

}  // namespace internal

// Resolves a --jobs value: n >= 1 is taken as-is, anything else (0 or
// negative) means "one worker per hardware thread".
int ResolveJobs(int jobs);

struct SweepConfig {
  // Worker threads. 1 (the default) runs inline on the calling thread;
  // <= 0 resolves to the hardware concurrency.
  int jobs = 1;
  // Root of the per-run seed derivation (SeedFor below).
  uint64_t base_seed = 0;
  // Optional sweep-level metrics sink, written only from the submitting
  // thread after each sweep completes:
  //   sweep.runs         counter  total runs executed
  //   sweep.sweeps       counter  completed Map/RunPoints calls
  //   sweep.wall_us      counter  cumulative wall-clock across sweeps
  //   sweep.points_per_s gauge    throughput of the last sweep
  MetricRegistry* registry = nullptr;
  // After each RunPoints, print the FNV-1a combination of the per-run
  // end-state hashes to stderr (run-id order, so independent of --jobs).
  // Benches expose this as --audit-hash; tests pin the per-run values.
  bool print_audit_hash = false;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepConfig config = SweepConfig());

  int jobs() const { return jobs_; }
  const SweepConfig& config() const { return config_; }

  // The per-run seed contract: pure in (base_seed, run_id), collision-free
  // across run ids (see util/seed.h).
  uint64_t SeedFor(uint64_t run_id) const {
    return DeriveSeed(config_.base_seed, run_id);
  }

  // One experiment point: RunPoints() constructs the scheduler the spec
  // describes per run — schedulers are single-run objects — and feeds
  // `options` to RunExperiment on `*trace`. The spec carries the topology
  // too, so multi-core points sweep exactly like single-CPU ones.
  struct Point {
    const Trace* trace = nullptr;  // required; shared read-only
    SchedulerSpec spec;
    ExperimentOptions options;
  };

  // Runs every point, fanning out over the pool; result i corresponds to
  // points[i] regardless of jobs. Points keep the qc_seed they carry —
  // sweeps that want per-run streams set options.qc_seed = SeedFor(i)
  // while building the vector.
  std::vector<ExperimentResult> RunPoints(
      const std::vector<Point>& points) const;

  // Generic fan-out: invokes fn(run_id) for run_id in [0, n) and returns
  // the results in run-id order. fn must be safe to call concurrently from
  // multiple threads (capture shared state by const reference only) and
  // its result type must be default-constructible and movable.
  //
  // If any run throws, the remaining queued runs are abandoned, the pool
  // drains, and the first exception (by completion order) is rethrown on
  // the calling thread.
  template <typename Fn>
  auto Map(size_t n, Fn&& fn) const {
    using Result = std::invoke_result_t<Fn&, size_t>;
    static_assert(std::is_default_constructible_v<Result>,
                  "SweepRunner::Map needs a default-constructible result");
    // Wall time feeds only the sweep.* stderr metrics, never results.
    // lint:allow(wall-clock) sweep throughput metrics only
    const auto start = std::chrono::steady_clock::now();
    std::vector<Result> results(n);
    const int workers =
        static_cast<int>(std::min<size_t>(n, static_cast<size_t>(jobs_)));
    if (workers <= 1) {
      for (size_t i = 0; i < n; ++i) results[i] = fn(i);
    } else {
      std::atomic<size_t> next{0};
      internal::SweepAbort abort;
      auto worker = [&] {
        while (!abort.failed()) {
          const size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= n) return;
          try {
            results[i] = fn(i);
          } catch (...) {
            abort.Capture();
          }
        }
      };
      std::vector<std::thread> pool;
      pool.reserve(static_cast<size_t>(workers));
      for (int w = 0; w < workers; ++w) pool.emplace_back(worker);
      for (std::thread& t : pool) t.join();
      abort.RethrowIfFailed();
    }
    RecordSweepMetrics(n, std::chrono::duration_cast<std::chrono::microseconds>(
                              // lint:allow(wall-clock) sweep.* metrics only
                              std::chrono::steady_clock::now() - start)
                              .count());
    return results;
  }

 private:
  // Submitting-thread-only (the registry is not thread-safe).
  void RecordSweepMetrics(size_t runs, int64_t wall_us) const;

  SweepConfig config_;
  int jobs_;
};

}  // namespace webdb

#endif  // WEBDB_EXP_SWEEP_RUNNER_H_
