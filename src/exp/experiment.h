// One-shot experiment runner: (trace, scheduler, QC assignment, server
// config) -> metrics, profit percentages and time series. Every figure
// bench is a thin loop over RunExperiment.

#ifndef WEBDB_EXP_EXPERIMENT_H_
#define WEBDB_EXP_EXPERIMENT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "exp/scheduler_factory.h"
#include "obs/metric_registry.h"
#include "qc/qc_generator.h"
#include "sched/cpu_set_scheduler.h"
#include "sched/scheduler.h"
#include "server/server_config.h"
#include "trace/trace.h"

namespace webdb {

// --- QC sources -------------------------------------------------------------
// Exactly one source assigns Quality Contracts to arriving queries; the
// variant makes "none" or "several" unrepresentable.

// Figure 1 mode: naive policies, no QCs — every query carries an empty
// contract. Callers typically also disable lifetime drops via
// server.lifetime_factor = 0.
struct ZeroContracts {};

// Time-varying profiles (Figure 9). The generator is not owned and must
// outlive the experiment; it must be non-null.
struct QcSchedule {
  const TimeVaryingQcGenerator* generator = nullptr;
};

// A plain QcProfile draws fixed-distribution contracts (Figures 6-8).
using QcSource = std::variant<ZeroContracts, QcProfile, QcSchedule>;

struct ExperimentOptions {
  ServerConfig server;
  uint64_t qc_seed = 7;
  QcSource qc = ZeroContracts{};
  // Fill ExperimentResult::end_state_hash after the run drains. Off by
  // default: the hash walks every transaction and data item, a measurable
  // cost on short runs. The regression tests and --audit-hash turn it on.
  bool compute_end_state_hash = false;
};

struct ExperimentResult {
  std::string scheduler;

  // Profit accounting (fractions of the submitted maximum).
  double qos_pct = 0.0;
  double qod_pct = 0.0;
  double total_pct = 0.0;
  double qos_max_pct = 0.0;
  double qod_max_pct = 0.0;
  double qos_gained = 0.0;
  double qod_gained = 0.0;
  double qos_max = 0.0;
  double qod_max = 0.0;

  // Classic metrics.
  double avg_response_ms = 0.0;
  double avg_staleness = 0.0;
  double cpu_utilization = 0.0;

  // Lifecycle counters.
  int64_t queries_committed = 0;
  int64_t queries_dropped = 0;
  int64_t queries_expired = 0;
  int64_t query_restarts = 0;
  int64_t updates_applied = 0;
  int64_t updates_invalidated = 0;
  int64_t update_restarts = 0;
  int64_t preemptions = 0;
  // Admission outcomes (0 when no controller was configured).
  int64_t queries_rejected = 0;
  int64_t queries_shed = 0;
  // Shared execution (0 unless ServerConfig::fusion.enabled): members
  // settled through fused scans, and the number of groups formed.
  int64_t queries_fused = 0;
  int64_t fusion_groups = 0;
  // Fused-result cache (0 unless fusion.result_cache): queries answered
  // from the cache at submit, and committed scans retained in it.
  int64_t queries_cache_hits = 0;
  int64_t cache_fills = 0;
  // Total CPU busy time across the pool, in milliseconds — denominator of
  // profit-per-CPU-second (the fusion headline).
  double cpu_busy_ms = 0.0;
  // Peak sampled queue depths (0 unless queue_sample_period was set).
  int64_t peak_queued_queries = 0;
  int64_t peak_queued_updates = 0;

  // Per-tenant outcomes, sorted by tenant id (empty unless the run was
  // tenant-aware, i.e. ServerConfig::tenants was set).
  struct TenantResult {
    TenantId tenant = 0;
    std::string name;
    int64_t submitted = 0;
    int64_t committed = 0;
    int64_t rejected = 0;
    int64_t shed = 0;
    int64_t dropped = 0;
    double profit = 0.0;
  };
  std::vector<TenantResult> tenants;

  // Per-second profit series (bucket sums), for Figure 9a-c.
  std::vector<double> qos_gained_per_s;
  std::vector<double> qod_gained_per_s;
  std::vector<double> qos_max_per_s;
  std::vector<double> qod_max_per_s;
  // (time, ρ) per adaptation period — only populated when the scheduler is
  // QUTS (Figure 9d).
  std::vector<std::pair<SimTime, double>> rho_series;

  // FNV-1a hash of the server's end state (WebDatabaseServer::EndStateHash):
  // two runs agree on it iff they took the same schedule. Pinned by
  // tests/regression_test.cc; printed by the benches under --audit-hash.
  // Zero unless ExperimentOptions::compute_end_state_hash was set.
  uint64_t end_state_hash = 0;

  // Final metric-registry snapshot taken after the run drained: server.* /
  // txn.* lifecycle counters plus whatever the scheduler exports under
  // scheduler.* (QUTS: scheduler.quts.rho and friends).
  MetricSnapshot registry;
  // Periodic snapshots (empty unless server.metric_snapshot_period was set).
  std::vector<MetricSnapshot> registry_series;
};

// Runs `trace` through `scheduler` (not owned; used for a single run — make
// a fresh one per experiment). The simulation runs until it fully drains.
// The CpuSetScheduler overload is the primary entry point; the Scheduler
// overload lifts the legacy policy through a SingleCpuAdapter and is
// bit-identical to the pre-CPU-set runner.
ExperimentResult RunExperiment(const Trace& trace, CpuSetScheduler* scheduler,
                               const ExperimentOptions& options);
ExperimentResult RunExperiment(const Trace& trace, Scheduler* scheduler,
                               const ExperimentOptions& options);
// Convenience: builds the scheduler the spec describes (factory-owned for
// the duration of the run) and runs the trace through it.
ExperimentResult RunExperiment(const Trace& trace, const SchedulerSpec& spec,
                               const ExperimentOptions& options);

}  // namespace webdb

#endif  // WEBDB_EXP_EXPERIMENT_H_
