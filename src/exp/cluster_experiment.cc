#include "exp/cluster_experiment.h"

#include <algorithm>

#include "util/logging.h"
#include "util/rng.h"
#include "util/stats.h"

namespace webdb {

namespace {

// Chained-event pump, the cluster-side analogue of TraceFeeder.
class ClusterFeeder {
 public:
  ClusterFeeder(WebDatabaseCluster* cluster, const Trace* trace,
                const QcProfile& profile, uint64_t qc_seed)
      : cluster_(cluster),
        trace_(trace),
        rng_(qc_seed),
        generator_(profile) {}

  void Start() {
    const SimTime first = NextArrival();
    if (first == kSimTimeMax) return;
    cluster_->sim().ScheduleAt(first, [this] { Pump(); });
  }

 private:
  SimTime NextArrival() const {
    SimTime t = kSimTimeMax;
    if (next_query_ < trace_->queries.size()) {
      t = std::min(t, trace_->queries[next_query_].arrival);
    }
    if (next_update_ < trace_->updates.size()) {
      t = std::min(t, trace_->updates[next_update_].arrival);
    }
    return t;
  }

  void Pump() {
    const SimTime now = cluster_->sim().Now();
    while (next_update_ < trace_->updates.size() &&
           trace_->updates[next_update_].arrival <= now) {
      const UpdateRecord& u = trace_->updates[next_update_++];
      cluster_->SubmitUpdate(u.item, u.value, u.exec_time);
    }
    while (next_query_ < trace_->queries.size() &&
           trace_->queries[next_query_].arrival <= now) {
      const QueryRecord& q = trace_->queries[next_query_++];
      cluster_->SubmitQuery(q.type, q.items, generator_.Next(rng_),
                            q.exec_time);
    }
    const SimTime next = NextArrival();
    if (next != kSimTimeMax) {
      cluster_->sim().ScheduleAt(next, [this] { Pump(); });
    }
  }

  WebDatabaseCluster* cluster_;
  const Trace* trace_;
  Rng rng_;
  QcGenerator generator_;
  size_t next_query_ = 0;
  size_t next_update_ = 0;
};

}  // namespace

ClusterExperimentResult RunClusterExperiment(
    const Trace& trace, const WebDatabaseCluster::SchedulerFactory& factory,
    const ClusterConfig& config, const QcProfile& profile,
    uint64_t qc_seed) {
  trace.CheckValid();
  WebDatabaseCluster cluster(trace.num_items, factory, config);
  cluster.ReserveCapacity(trace.queries.size(), trace.updates.size());
  ClusterFeeder feeder(&cluster, &trace, profile, qc_seed);
  feeder.Start();
  cluster.Run();
  WEBDB_CHECK(cluster.IsQuiescent());

  ClusterExperimentResult result;
  result.routing = ToString(config.routing.policy);
  result.num_replicas = config.num_replicas;
  result.total_pct = cluster.TotalPct();
  result.gained = cluster.TotalGained();
  result.max = cluster.TotalMax();
  result.queries_committed = cluster.TotalQueriesCommitted();
  result.updates_applied = cluster.TotalUpdatesApplied();
  // Committed-count-weighted means across replicas, via the per-replica
  // sums.
  double response_sum = 0.0, staleness_sum = 0.0;
  int64_t committed = 0;
  for (size_t i = 0; i < cluster.NumReplicas(); ++i) {
    result.routed.push_back(cluster.RoutedCount(i));
    const ServerMetrics& metrics = cluster.replica(i).metrics();
    response_sum += metrics.response_time_ms.sum();
    staleness_sum += metrics.staleness.sum();
    committed += metrics.queries_committed;
  }
  if (committed > 0) {
    result.avg_response_ms = response_sum / static_cast<double>(committed);
    result.avg_staleness = staleness_sum / static_cast<double>(committed);
  }
  return result;
}

}  // namespace webdb
