// Experiment runner for the replicated-cluster extension: feeds a trace
// through a WebDatabaseCluster (queries routed by the configured policy,
// updates fanned out to every replica) and aggregates the outcome.

#ifndef WEBDB_EXP_CLUSTER_EXPERIMENT_H_
#define WEBDB_EXP_CLUSTER_EXPERIMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/web_database_cluster.h"
#include "qc/qc_generator.h"
#include "trace/trace.h"

namespace webdb {

struct ClusterExperimentResult {
  std::string routing;
  int num_replicas = 0;
  double total_pct = 0.0;
  double gained = 0.0;
  double max = 0.0;
  int64_t queries_committed = 0;
  int64_t updates_applied = 0;
  // Queries routed to each replica.
  std::vector<int64_t> routed;
  // Mean response time over all replicas' committed queries (ms).
  double avg_response_ms = 0.0;
  double avg_staleness = 0.0;
};

// Runs `trace` through a cluster built from `factory`. Queries draw their
// contracts from `profile` with `qc_seed`.
ClusterExperimentResult RunClusterExperiment(
    const Trace& trace, const WebDatabaseCluster::SchedulerFactory& factory,
    const ClusterConfig& config, const QcProfile& profile,
    uint64_t qc_seed = 7);

}  // namespace webdb

#endif  // WEBDB_EXP_CLUSTER_EXPERIMENT_H_
